(* BAM example: transparently accelerate a parallel "Clang build".

     dune exec examples/bam_build.exe

   A make -j8 build of 300 source files. BAM intercepts each exec of the
   compiler binary (the LD_PRELOAD analog): the first 4 runs are profiled,
   BOLT runs once in the background, and every later exec launches the
   BOLTed compiler — no Makefile or compiler changes. *)

open Ocolos_workloads
module Bam = Ocolos_core.Bam
module Clock = Ocolos_sim.Clock

let n_files = 300
let jobs = 8

let compile_seconds w ~binary ~file =
  let input = List.nth w.Workload.inputs file in
  let proc = Workload.launch ~binary w ~input in
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:200_000_000 proc;
  Clock.cycles_to_seconds (Ocolos_proc.Proc.max_cycles proc)

let () =
  let w = Apps.clang_like ~n_files ~tx_per_file:250 () in
  Fmt.pr "compiler binary: %a@." Ocolos_binary.Binary.pp_summary w.Workload.binary;

  (* Measure one real original compile, then profile a few files and build
     the BOLTed compiler exactly as BAM would. *)
  let t_orig_base = compile_seconds w ~binary:w.Workload.binary ~file:0 in
  Fmt.pr "one compiler execution: %.2f s (original)@." t_orig_base;
  (* BAM samples at a lower frequency than server-mode profiling: compiler
     runs are short, and the build must not drown in perf2bolt work. *)
  let bam_perf = { Ocolos_profiler.Perf.sample_period = 6_000; pmi_overhead = 60.0 } in
  let profiles =
    List.init 4 (fun file ->
        let input = List.nth w.Workload.inputs file in
        let proc = Workload.launch w ~input in
        let session = Ocolos_profiler.Perf.start ~cfg:bam_perf proc in
        Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:200_000_000 proc;
        Ocolos_profiler.Perf2bolt.convert ~binary:w.Workload.binary
          (Ocolos_profiler.Perf.stop session))
  in
  let merged = Ocolos_profiler.Profile.merge profiles in
  let bolted = Ocolos_bolt.Bolt.run ~binary:w.Workload.binary ~profile:merged () in
  let t_opt_base = compile_seconds w ~binary:bolted.Ocolos_bolt.Bolt.merged ~file:5 in
  Fmt.pr "one compiler execution: %.2f s (BOLTed) — %.2fx@." t_opt_base
    (t_orig_base /. t_opt_base);
  let cost = Ocolos_core.Cost.default in
  let bolt_seconds =
    Ocolos_core.Cost.perf2bolt_seconds cost ~records:merged.Ocolos_profiler.Profile.total_records
    +. Ocolos_core.Cost.bolt_seconds cost ~work_instrs:bolted.Ocolos_bolt.Bolt.work_instrs
  in

  (* Schedule the whole build under BAM. *)
  let jitter i = 1.0 +. (0.06 *. sin (float_of_int ((17 * i) + 3))) in
  let out =
    Bam.simulate_build
      ~config:{ Bam.jobs; profiles_wanted = 4; perf_slowdown = 1.06 }
      ~n_files
      ~t_orig:(fun f -> t_orig_base *. jitter f)
      ~t_opt:(fun f -> t_opt_base *. jitter f)
      ~bolt_seconds ()
  in
  let baseline =
    Bam.simulate_build
      ~config:{ Bam.jobs; profiles_wanted = 0; perf_slowdown = 1.0 }
      ~n_files
      ~t_orig:(fun f -> t_orig_base *. jitter f)
      ~t_opt:(fun f -> t_orig_base *. jitter f)
      ~bolt_seconds:0.0 ()
  in
  Fmt.pr "@.make -j%d, %d files:@." jobs n_files;
  Fmt.pr "  original build:        %7.1f s@." baseline.Bam.total_seconds;
  Fmt.pr "  BAM build:             %7.1f s (%.2fx)@." out.Bam.total_seconds
    (baseline.Bam.total_seconds /. out.Bam.total_seconds);
  Fmt.pr "  profiled executions:   %d@." out.Bam.profiled_runs;
  Fmt.pr "  original executions:   %d (waiting for BOLT)@." out.Bam.original_runs;
  Fmt.pr "  optimized executions:  %d@." out.Bam.optimized_runs;
  (match out.Bam.bolt_ready_at with
  | Some t -> Fmt.pr "  BOLTed binary ready at %.1f s into the build@." t
  | None -> ())
