(** Fig. 7 driver: per-second throughput (and modeled p95 latency) of a
    server before, during and after OCOLOS's code replacement, across the
    paper's five regions. *)

type region = Warmup | Profiling | Background | Pause | Optimized

val region_name : region -> string

type point = { second : int; tps : float; p95_ms : float; region : region }

type t = {
  points : point list;
  stats : Ocolos_core.Ocolos.replacement_stats;
  perf2bolt_seconds : float;
  bolt_seconds : float;
}

val run :
  ?config:Ocolos_core.Ocolos.config ->
  ?seed:int ->
  ?warmup_s:int ->
  ?profile_s:int ->
  ?post_s:int ->
  Ocolos_workloads.Workload.t ->
  input:Ocolos_workloads.Input.t ->
  t
