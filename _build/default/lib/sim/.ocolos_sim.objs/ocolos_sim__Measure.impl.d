lib/sim/measure.ml: Clock Counters Float Fmt Ocolos_bolt Ocolos_core Ocolos_pgo Ocolos_proc Ocolos_profiler Ocolos_uarch Ocolos_workloads Proc Workload
