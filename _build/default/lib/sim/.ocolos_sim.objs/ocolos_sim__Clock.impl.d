lib/sim/clock.ml:
