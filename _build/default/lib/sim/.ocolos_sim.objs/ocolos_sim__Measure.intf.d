lib/sim/measure.mli: Ocolos_binary Ocolos_bolt Ocolos_core Ocolos_pgo Ocolos_profiler Ocolos_uarch Ocolos_workloads
