lib/sim/clock.mli:
