lib/sim/rss.mli: Ocolos_binary Ocolos_core Ocolos_workloads
