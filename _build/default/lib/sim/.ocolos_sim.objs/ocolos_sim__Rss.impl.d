lib/sim/rss.ml: Array Ocolos_binary Ocolos_core Ocolos_workloads
