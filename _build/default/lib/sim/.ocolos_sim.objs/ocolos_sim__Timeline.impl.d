lib/sim/timeline.ml: Array Clock Float List Ocolos_core Ocolos_proc Ocolos_uarch Ocolos_workloads Proc Workload
