lib/sim/timeline.mli: Ocolos_core Ocolos_workloads
