(* Simulated wall clock.

   The simulator's core clock is scaled: one simulated second is 10^6 core
   cycles (versus 2.1x10^9 on the paper's Broadwell testbed), matching the
   ~1:100 scaling of the workloads' code footprints. All "seconds" in
   experiment output are simulated seconds. *)

let cycles_per_second = 1_000_000.0

let seconds_to_cycles s = s *. cycles_per_second
let cycles_to_seconds c = c /. cycles_per_second
