(** Simulated wall clock: one simulated second = 10^6 core cycles (the
    workloads are ~1:100 scale models of the paper's binaries). *)

val cycles_per_second : float
val seconds_to_cycles : float -> float
val cycles_to_seconds : float -> float
