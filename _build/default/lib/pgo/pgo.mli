(** Compiler PGO analog (clang's -fprofile-use configuration in the paper's
    Fig. 5).

    The machine-level LBR profile is mapped back to source-level IR through
    debug info — a lossy process (dropped edges, blurred counts) that models
    why compiler PGO trails BOLT — and the whole program is recompiled with
    block reordering and C3 function ordering driven by the degraded
    counts. *)

type config = {
  edge_drop_prob : float;
  call_drop_prob : float;
  count_blur : float;
  hot_threshold : int;
}

val default_config : config

type result = {
  binary : Ocolos_binary.Binary.t;
  funcs_reordered : int;
  edges_mapped : int;
  edges_total : int;
}

val run :
  ?config:config ->
  program:Ocolos_isa.Ir.program ->
  binary:Ocolos_binary.Binary.t ->
  profile:Ocolos_profiler.Profile.t ->
  name:string ->
  unit ->
  result
