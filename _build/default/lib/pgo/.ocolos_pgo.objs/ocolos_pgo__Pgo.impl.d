lib/pgo/pgo.ml: Array Binary Emit Hashtbl Instr Ir Layout List Ocolos_binary Ocolos_bolt Ocolos_isa Ocolos_profiler
