lib/pgo/pgo.mli: Ocolos_binary Ocolos_isa Ocolos_profiler
