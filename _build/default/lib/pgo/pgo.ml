(* Compiler PGO analog (clang's -fprofile-use path in the paper's Fig. 5).

   Unlike BOLT, which optimizes machine code against the exact addresses the
   profile was collected on, compiler PGO must map PC-level profiles back to
   source-level structures — a lossy process (He et al., "Profile inference
   revisited"; paper Section VI-B attributes PGO's gap to exactly this).

   We model it faithfully: the same LBR profile is mapped onto the program
   IR through the binary's debug info, but each branch edge is dropped with
   a deterministic probability and counts are blurred. The compiler then
   reorders blocks within functions and orders functions (C3) using the
   degraded counts, and re-emits the whole program as a fresh binary — no
   hot/cold splitting at machine-code granularity. *)

open Ocolos_isa
open Ocolos_binary

type config = {
  edge_drop_prob : float; (* PC->source mapping failures for branch edges *)
  call_drop_prob : float;
  count_blur : float; (* counts scaled by 1 +/- blur, deterministically *)
  hot_threshold : int; (* min mapped records to reorder a function *)
}

let default_config =
  { edge_drop_prob = 0.35; call_drop_prob = 0.15; count_blur = 0.5; hot_threshold = 8 }

(* Deterministic hash in [0, 1) for drop/blur decisions. *)
let unit_hash key =
  let h = ref (key * 0x9E3779B1) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x85EBCA6B;
  h := !h lxor (!h lsr 13);
  float_of_int (!h land 0xFFFFF) /. 1048576.0

let blur cfg key count =
  let f = 1.0 +. (cfg.count_blur *. ((2.0 *. unit_hash (key + 7919)) -. 1.0)) in
  max 1 (int_of_float (float_of_int count *. f))

type mapped_func = {
  mf_counts : int array; (* per-bid execution estimate *)
  mf_edges : (int * int, int) Hashtbl.t;
  mutable mf_records : int;
}

(* Map a machine-level profile onto IR blocks via debug info. *)
let map_profile cfg (program : Ir.program) (binary : Binary.t)
    (profile : Ocolos_profiler.Profile.t) =
  let funcs =
    Array.map
      (fun (f : Ir.func) ->
        { mf_counts = Array.make (Array.length f.Ir.blocks) 0;
          mf_edges = Hashtbl.create 16;
          mf_records = 0 })
      program.Ir.funcs
  in
  let debug addr = Hashtbl.find_opt binary.Binary.debug addr in
  Hashtbl.iter
    (fun (from_addr, to_addr) count ->
      if unit_hash from_addr >= cfg.edge_drop_prob then
        match (debug from_addr, debug to_addr) with
        | Some (f1, b1), Some (f2, b2) when f1 = f2 ->
          let mf = funcs.(f1) in
          let count = blur cfg from_addr count in
          let key = (b1, b2) in
          (match Hashtbl.find_opt mf.mf_edges key with
          | Some v -> Hashtbl.replace mf.mf_edges key (v + count)
          | None -> Hashtbl.add mf.mf_edges key count);
          mf.mf_counts.(b1) <- mf.mf_counts.(b1) + count;
          mf.mf_counts.(b2) <- mf.mf_counts.(b2) + count;
          mf.mf_records <- mf.mf_records + count
        | Some (f1, b1), _ ->
          let mf = funcs.(f1) in
          mf.mf_counts.(b1) <- mf.mf_counts.(b1) + count;
          mf.mf_records <- mf.mf_records + count
        | None, _ -> ())
    profile.Ocolos_profiler.Profile.branches;
  (* Straight-line ranges refine block coverage where endpoints map. *)
  Hashtbl.iter
    (fun (start_addr, end_addr) count ->
      match (debug start_addr, debug end_addr) with
      | Some (f1, b1), Some (f2, b2) when f1 = f2 ->
        let mf = funcs.(f1) in
        let count = blur cfg start_addr count in
        for b = min b1 b2 to max b1 b2 do
          (* Coarse: bids between the endpoints get covered; source-order
             bids approximate the address order here, which is exactly the
             kind of imprecision AutoFDO-style mapping suffers. *)
          if b < Array.length mf.mf_counts then mf.mf_counts.(b) <- mf.mf_counts.(b) + count
        done
      | _, _ -> ())
    profile.Ocolos_profiler.Profile.ranges;
  funcs

(* IR block byte size under the emitter's encoding (terminator excluded:
   layout-dependent). *)
let block_bytes (b : Ir.block) =
  List.fold_left
    (fun acc si ->
      acc
      +
      match si with
      | Ir.Plain i -> Instr.size i
      | Ir.SCall _ -> Instr.size (Instr.Call 0)
      | Ir.SCallInd r -> Instr.size (Instr.CallInd r)
      | Ir.SFpCreate (r, _) -> Instr.size (Instr.FpCreate (r, 0)))
    0 b.Ir.body

(* Reuse BOLT's chain-building block reorderer by presenting the mapped IR
   counts as a pseudo-reconstruction. *)
let pseudo_reconstruction (f : Ir.func) (mf : mapped_func) =
  let n = Array.length f.Ir.blocks in
  let sizes = Array.map (fun b -> max 1 (block_bytes b + 4)) f.Ir.blocks in
  let addr = Array.make n 0 and addr_end = Array.make n 0 in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    addr.(i) <- !cursor;
    cursor := !cursor + sizes.(i);
    addr_end.(i) <- !cursor
  done;
  { Ocolos_bolt.Cfg.rc_fid = f.Ir.fid;
    rc_func = f;
    rc_block_addr = addr;
    rc_block_end = addr_end;
    rc_counts = Array.copy mf.mf_counts;
    rc_edges = Hashtbl.copy mf.mf_edges;
    rc_instr_count = Ir.func_instr_count f }

type result = {
  binary : Binary.t;
  funcs_reordered : int;
  edges_mapped : int;
  edges_total : int;
}

(* Recompile [program] with the degraded profile: block reordering within
   hot functions, C3 function order (hot first, rest in source order). *)
let run ?(config = default_config) ~(program : Ir.program) ~(binary : Binary.t)
    ~(profile : Ocolos_profiler.Profile.t) ~name () =
  let mapped = map_profile config program binary profile in
  let hot =
    Array.to_list program.Ir.funcs
    |> List.filter (fun (f : Ir.func) -> mapped.(f.Ir.fid).mf_records >= config.hot_threshold)
    |> List.map (fun (f : Ir.func) -> f.Ir.fid)
  in
  let hot_set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace hot_set f ()) hot;
  (* Per-function block order from the degraded counts. Functions whose
     mapped edge coverage is too thin keep their source order (a real
     compiler refuses to act on unannotated CFGs), and surviving chains are
     concatenated in source order rather than by density — both defenses
     against the mapping loss. *)
  let block_order = Hashtbl.create 64 in
  List.iter
    (fun fid ->
      let f = program.Ir.funcs.(fid) in
      let nblocks = Array.length f.Ir.blocks in
      let coverage =
        float_of_int (Hashtbl.length mapped.(fid).mf_edges) /. float_of_int (max 1 nblocks)
      in
      if coverage >= 0.3 then begin
        let rc = pseudo_reconstruction f mapped.(fid) in
        let hot_order, cold =
          Ocolos_bolt.Bb_reorder.layout_func ~split:false ~chain_order:`Source rc
        in
        Hashtbl.replace block_order fid (hot_order @ cold)
      end)
    hot;
  (* Function order: C3 over the (slightly degraded) call graph. *)
  let edge_weight = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (caller, callee) w ->
      if
        Hashtbl.mem hot_set caller && Hashtbl.mem hot_set callee
        && unit_hash ((caller * 31) + callee) >= config.call_drop_prob
      then Hashtbl.replace edge_weight (caller, callee) w)
    profile.Ocolos_profiler.Profile.calls;
  let graph =
    { Ocolos_bolt.Func_reorder.nodes = hot;
      edge_weight;
      node_size = (fun fid -> Ir.func_instr_count program.Ir.funcs.(fid) * 4);
      node_heat = (fun fid -> mapped.(fid).mf_records) }
  in
  let hot_order = Ocolos_bolt.Func_reorder.c3 graph in
  let cold_order =
    Array.to_list program.Ir.funcs
    |> List.filter_map (fun (f : Ir.func) ->
           if Hashtbl.mem hot_set f.Ir.fid then None else Some f.Ir.fid)
  in
  let layout =
    List.map
      (fun fid ->
        let order =
          match Hashtbl.find_opt block_order fid with
          | Some o -> o
          | None ->
            List.init (Array.length program.Ir.funcs.(fid).Ir.blocks) (fun i -> i)
        in
        { Layout.fid; hot = order; cold = [] })
      (hot_order @ cold_order)
  in
  let emitted = Emit.emit ~name program layout in
  let edges_total = Hashtbl.length profile.Ocolos_profiler.Profile.branches in
  let edges_mapped =
    Array.fold_left (fun acc mf -> acc + Hashtbl.length mf.mf_edges) 0 mapped
  in
  { binary = emitted.Emit.binary;
    funcs_reordered = List.length hot;
    edges_mapped;
    edges_total }
