(* Basic-block reordering (the most impactful PGO transformation, paper
   Section II-B).

   Greedy chain construction in the style of BOLT: CFG edges are visited by
   descending weight and chains are merged tail-to-head so that hot edges
   become fallthroughs; chains are then concatenated with the entry chain
   first and the rest by execution density. Zero-count blocks can be split
   into a cold section (BOLT's hot-cold splitting). The ExtTSP metric of
   Newell & Pupyrev scores layouts for evaluation and tests. *)

let block_size rc bid = rc.Cfg.rc_block_end.(bid) - rc.Cfg.rc_block_addr.(bid)

(* ExtTSP score of a block order: rewards fallthrough (weight 1.0) and
   short forward/backward jumps (weight 0.1, linear decay over 1024/640
   bytes). Higher is better. *)
let ext_tsp_score rc (order : int list) =
  let pos = Hashtbl.create 32 in
  let cursor = ref 0 in
  List.iter
    (fun bid ->
      Hashtbl.replace pos bid (!cursor, !cursor + block_size rc bid);
      cursor := !cursor + block_size rc bid)
    order;
  Hashtbl.fold
    (fun (src, dst) count acc ->
      match (Hashtbl.find_opt pos src, Hashtbl.find_opt pos dst) with
      | Some (_, src_end), Some (dst_start, _) ->
        let w = float_of_int count in
        let score =
          if src_end = dst_start then w
          else if dst_start > src_end then begin
            let d = dst_start - src_end in
            if d <= 1024 then 0.1 *. w *. (1.0 -. (float_of_int d /. 1024.0)) else 0.0
          end
          else begin
            let d = src_end - dst_start in
            if d <= 640 then 0.1 *. w *. (1.0 -. (float_of_int d /. 640.0)) else 0.0
          end
        in
        acc +. score
      | _, _ -> acc)
    rc.Cfg.rc_edges 0.0

type chain = { mutable blocks : int list; mutable rev_tail : int; mutable total : int; mutable bytes : int }

(* Compute (hot order, cold blocks) for one function. [split] exiles
   never-executed blocks; without profile data the original order is kept.
   [chain_order] picks how non-entry chains are concatenated: [`Density]
   (BOLT's rule, best with complete profiles) or [`Source] (original
   address order, safer under the degraded profiles compiler PGO sees). *)
let layout_func ?(split = true) ?(chain_order = `Density) (rc : Cfg.reconstructed) =
  let nblocks = Array.length rc.Cfg.rc_block_addr in
  let original = List.init nblocks (fun i -> i) in
  if Cfg.total_count rc = 0 then (original, [])
  else begin
    let hot bid = rc.Cfg.rc_counts.(bid) > 0 || bid = 0 in
    let cold_blocks = List.filter (fun b -> not (hot b)) original in
    let chain_of = Array.init nblocks (fun bid ->
        { blocks = [ bid ]; rev_tail = bid; total = rc.Cfg.rc_counts.(bid); bytes = block_size rc bid })
    in
    let repr = Array.init nblocks (fun i -> i) in
    let rec find i = if repr.(i) = i then i else (repr.(i) <- find repr.(i); repr.(i)) in
    (* Merge chains over edges by descending weight: u's chain tail must be
       u and v's chain head must be v; never bury the entry block. *)
    let edges =
      Hashtbl.fold (fun (u, v) w acc -> ((u, v), w) :: acc) rc.Cfg.rc_edges []
      |> List.filter (fun ((u, v), _) -> u <> v && v <> 0 && hot u && hot v)
      |> List.sort (fun (_, w1) (_, w2) -> compare w2 w1)
    in
    List.iter
      (fun ((u, v), _) ->
        let cu = find u and cv = find v in
        if cu <> cv then begin
          let a = chain_of.(cu) and b = chain_of.(cv) in
          if a.rev_tail = u && List.hd b.blocks = v then begin
            a.blocks <- a.blocks @ b.blocks;
            a.rev_tail <- b.rev_tail;
            a.total <- a.total + b.total;
            a.bytes <- a.bytes + b.bytes;
            repr.(cv) <- cu
          end
        end)
      edges;
    (* Collect distinct hot chains; entry chain first, then by density. *)
    let seen = Hashtbl.create 16 in
    let chains =
      List.filter_map
        (fun bid ->
          if not (hot bid) then None
          else
            let c = find bid in
            if Hashtbl.mem seen c then None
            else begin
              Hashtbl.add seen c ();
              Some chain_of.(c)
            end)
        original
    in
    let entry_chain = find 0 in
    let density c = float_of_int c.total /. float_of_int (max 1 c.bytes) in
    let rest = List.filter (fun c -> c != chain_of.(entry_chain)) chains in
    let rest =
      match chain_order with
      | `Density -> List.sort (fun c1 c2 -> compare (density c2) (density c1)) rest
      | `Source ->
        List.sort (fun c1 c2 -> compare (List.hd c1.blocks) (List.hd c2.blocks)) rest
    in
    let hot_order = List.concat_map (fun c -> c.blocks) (chain_of.(entry_chain) :: rest) in
    if split then (hot_order, cold_blocks) else (hot_order @ cold_blocks, [])
  end
