lib/bolt/bb_reorder.ml: Array Cfg Hashtbl List
