lib/bolt/cfg.mli: Hashtbl Ocolos_binary Ocolos_isa
