lib/bolt/peephole.mli: Ocolos_isa
