lib/bolt/func_reorder.ml: Hashtbl List
