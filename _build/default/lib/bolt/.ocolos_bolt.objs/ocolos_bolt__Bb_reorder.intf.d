lib/bolt/bb_reorder.mli: Cfg
