lib/bolt/func_reorder.mli: Hashtbl
