lib/bolt/bolt.ml: Array Bb_reorder Binary Cfg Emit Func_reorder Hashtbl Ir Layout List Ocolos_binary Ocolos_isa Ocolos_profiler Option Peephole Profile
