lib/bolt/cfg.ml: Array Binary Fmt Hashtbl Instr Ir List Ocolos_binary Ocolos_isa Queue
