lib/bolt/peephole.ml: Array Instr Ir List Ocolos_isa
