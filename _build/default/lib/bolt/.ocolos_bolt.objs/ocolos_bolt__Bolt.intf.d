lib/bolt/bolt.mli: Ocolos_binary Ocolos_profiler
