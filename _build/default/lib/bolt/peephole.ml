(* Small peephole cleanups applied to reconstructed functions, mirroring the
   minor optimizations BOLT applies even to cold code: dead NOP removal and
   algebraic no-op elimination. *)

open Ocolos_isa

let is_noop_instr = function
  | Instr.Nop -> true
  | Instr.Alui ((Instr.Add | Instr.Sub | Instr.Or | Instr.Xor | Instr.Shl | Instr.Shr), d, s, 0)
    when d = s ->
    true
  | Instr.Alui (Instr.Mul, d, s, 1) when d = s -> true
  | _ -> false

let is_noop = function
  | Ir.Plain i -> is_noop_instr i
  | Ir.SCall _ | Ir.SCallInd _ | Ir.SFpCreate _ -> false

(* Returns the cleaned function and the number of instructions removed. *)
let run_func (f : Ir.func) =
  let removed = ref 0 in
  let blocks =
    Array.map
      (fun (b : Ir.block) ->
        let body =
          List.filter
            (fun si ->
              if is_noop si then begin
                incr removed;
                false
              end
              else true)
            b.Ir.body
        in
        { b with Ir.body })
      f.Ir.blocks
  in
  ({ f with Ir.blocks }, !removed)
