(** Small peephole cleanups applied to reconstructed functions, mirroring
    the minor optimizations BOLT applies even to cold code: dead NOPs and
    algebraic no-ops. *)

val is_noop_instr : Ocolos_isa.Instr.t -> bool
val is_noop : Ocolos_isa.Ir.sinstr -> bool

(** Returns the cleaned function and how many instructions were removed. *)
val run_func : Ocolos_isa.Ir.func -> Ocolos_isa.Ir.func * int
