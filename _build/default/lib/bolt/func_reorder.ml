(* Function reordering over the weighted call graph.

   Implements both algorithms the paper describes (Section II-C): the
   classic Pettis-Hansen greedy chain merge, and C3 (call-chain clustering,
   Ottoni & Maher), which places callers before callees and orders the
   resulting clusters by execution density. *)

type graph = {
  nodes : int list; (* fids to order *)
  edge_weight : (int * int, int) Hashtbl.t; (* (caller, callee) -> count *)
  node_size : int -> int; (* code bytes *)
  node_heat : int -> int; (* execution samples *)
}

let default_max_cluster_bytes = 1 lsl 20

(* C3: visit functions hottest-first; append each function's cluster to its
   heaviest caller's cluster (caller before callee), subject to a size cap;
   finally order clusters by density. *)
let c3 ?(max_cluster_bytes = default_max_cluster_bytes) g =
  let cluster : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* fid -> cluster id *)
  let members : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  (* cluster id -> fids in order *)
  let csize : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let cheat : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun fid ->
      Hashtbl.replace cluster fid fid;
      Hashtbl.replace members fid [ fid ];
      Hashtbl.replace csize fid (g.node_size fid);
      Hashtbl.replace cheat fid (g.node_heat fid))
    g.nodes;
  (* Heaviest caller of each node. *)
  let heaviest_caller = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (caller, callee) w ->
      if caller <> callee then
        match Hashtbl.find_opt heaviest_caller callee with
        | Some (_, w') when w' >= w -> ()
        | Some _ | None -> Hashtbl.replace heaviest_caller callee (caller, w))
    g.edge_weight;
  let by_heat = List.sort (fun a b -> compare (g.node_heat b) (g.node_heat a)) g.nodes in
  List.iter
    (fun fid ->
      match Hashtbl.find_opt heaviest_caller fid with
      | None -> ()
      | Some (caller, _) ->
        if Hashtbl.mem cluster caller then begin
          let cc = Hashtbl.find cluster caller and cf = Hashtbl.find cluster fid in
          if cc <> cf then begin
            let size_c = Hashtbl.find csize cc and size_f = Hashtbl.find csize cf in
            if size_c + size_f <= max_cluster_bytes then begin
              let merged = Hashtbl.find members cc @ Hashtbl.find members cf in
              Hashtbl.replace members cc merged;
              Hashtbl.replace csize cc (size_c + size_f);
              Hashtbl.replace cheat cc (Hashtbl.find cheat cc + Hashtbl.find cheat cf);
              List.iter (fun m -> Hashtbl.replace cluster m cc) (Hashtbl.find members cf);
              Hashtbl.remove members cf;
              Hashtbl.remove csize cf;
              Hashtbl.remove cheat cf
            end
          end
        end)
    by_heat;
  let clusters = Hashtbl.fold (fun cid fids acc -> (cid, fids) :: acc) members [] in
  let density (cid, _) =
    float_of_int (Hashtbl.find cheat cid) /. float_of_int (max 1 (Hashtbl.find csize cid))
  in
  clusters
  |> List.sort (fun a b -> compare (density b) (density a))
  |> List.concat_map snd

(* Pettis-Hansen: undirected edge weights, heaviest first; merge the two
   chains so the endpoints joined by the edge become adjacent when possible.
   Final order: chains by total heat, heaviest first. *)
let pettis_hansen g =
  let undirected = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (a, b) w ->
      if a <> b then begin
        let key = if a < b then (a, b) else (b, a) in
        match Hashtbl.find_opt undirected key with
        | Some w' -> Hashtbl.replace undirected key (w + w')
        | None -> Hashtbl.add undirected key w
      end)
    g.edge_weight;
  let chain : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let members : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun fid ->
      Hashtbl.replace chain fid fid;
      Hashtbl.replace members fid [ fid ])
    g.nodes;
  let edges =
    Hashtbl.fold (fun k w acc -> (k, w) :: acc) undirected []
    |> List.sort (fun (_, w1) (_, w2) -> compare w2 w1)
  in
  List.iter
    (fun ((a, b), _) ->
      match (Hashtbl.find_opt chain a, Hashtbl.find_opt chain b) with
      | Some ca, Some cb when ca <> cb ->
        let ma = Hashtbl.find members ca and mb = Hashtbl.find members cb in
        (* Choose the concatenation that puts [a] and [b] adjacent. *)
        let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> assert false in
        let merged =
          if last ma = a && List.hd mb = b then ma @ mb
          else if last mb = b && List.hd ma = a then mb @ ma
          else if List.hd ma = a && List.hd mb = b then List.rev ma @ mb
          else if last ma = a && last mb = b then ma @ List.rev mb
          else ma @ mb
        in
        Hashtbl.replace members ca merged;
        List.iter (fun m -> Hashtbl.replace chain m ca) mb;
        Hashtbl.remove members cb
      | _, _ -> ())
    edges;
  let heat fids = List.fold_left (fun acc f -> acc + g.node_heat f) 0 fids in
  Hashtbl.fold (fun _ fids acc -> fids :: acc) members []
  |> List.sort (fun f1 f2 -> compare (heat f2) (heat f1))
  |> List.concat

(* Keep the original (fid) order: the no-function-reordering ablation. *)
let original g = List.sort compare g.nodes
