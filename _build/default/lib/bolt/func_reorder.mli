(** Function reordering over the weighted call graph (paper Section II-C):
    Pettis-Hansen greedy chain merging and C3 call-chain clustering (callers
    placed before callees, clusters ordered by execution density). *)

type graph = {
  nodes : int list;  (** fids to order *)
  edge_weight : (int * int, int) Hashtbl.t;  (** (caller, callee) -> count *)
  node_size : int -> int;  (** code bytes *)
  node_heat : int -> int;  (** execution samples *)
}

val default_max_cluster_bytes : int

(** C3 ordering of [g.nodes]. *)
val c3 : ?max_cluster_bytes:int -> graph -> int list

(** Pettis-Hansen ordering of [g.nodes]. *)
val pettis_hansen : graph -> int list

(** Original (fid) order — the no-reordering ablation. *)
val original : graph -> int list
