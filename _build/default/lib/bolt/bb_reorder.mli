(** Basic-block reordering (paper Section II-B).

    Greedy chain construction in the style of BOLT: CFG edges are merged
    tail-to-head by descending weight so hot edges become fallthroughs;
    chains are concatenated entry-first then by execution density.
    Zero-count blocks can be split into a cold section. *)

val block_size : Cfg.reconstructed -> int -> int

(** ExtTSP layout score (Newell & Pupyrev): rewards fallthroughs and short
    jumps; higher is better. *)
val ext_tsp_score : Cfg.reconstructed -> int list -> float

(** [(hot order, cold blocks)] for one function. [split] exiles
    never-executed blocks; with no profile data the original order is
    returned unchanged. [chain_order] concatenates non-entry chains by
    execution density (BOLT) or source position (safer for degraded
    profiles). The entry block is always first in the hot order. *)
val layout_func :
  ?split:bool ->
  ?chain_order:[ `Density | `Source ] ->
  Cfg.reconstructed ->
  int list * int list
