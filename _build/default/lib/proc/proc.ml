(* A simulated process: an address space plus threads, an interpreter and a
   round-robin scheduler.

   External controllers (the profiler, OCOLOS) interact with the process the
   way perf and ptrace do with a real one: a taken-branch hook observes
   control flow (the LBR analog), pause/resume stops all threads at an
   instruction boundary, and the address space and per-thread register/stack
   state are directly inspectable and patchable while paused. *)

open Ocolos_isa

type branch_kind = Cond | Jump | IndJump | DirectCall | IndCall | Return

type hooks = {
  mutable on_taken_branch :
    (tid:int -> from_addr:int -> to_addr:int -> kind:branch_kind -> cycles:float -> unit) option;
  mutable translate_fp : (int -> int) option;
      (* wrapFuncPtrCreation: rewrites the value materialized by FpCreate *)
}

type t = {
  mem : Addr_space.t;
  threads : Thread.t array;
  binary : Ocolos_binary.Binary.t; (* the image the process was launched from *)
  hooks : hooks;
  mutable instret : int; (* total instructions retired, all threads *)
  mutable paused : bool;
}

let load ?(nthreads = 1) ?(cfg = Ocolos_uarch.Config.broadwell) ?(seed = 42) binary =
  let mem = Addr_space.load binary in
  let threads =
    Array.init nthreads (fun tid ->
        Thread.create ~tid ~entry:binary.Ocolos_binary.Binary.entry ~seed:(seed + (7919 * tid))
          ~cfg)
  in
  { mem;
    threads;
    binary;
    hooks = { on_taken_branch = None; translate_fp = None };
    instret = 0;
    paused = false }

exception Fault of string

let fault t (thread : Thread.t) fmt =
  Fmt.kstr
    (fun msg ->
      thread.Thread.state <- Thread.Faulted msg;
      ignore t;
      raise (Fault msg))
    fmt

let notify_branch t (thread : Thread.t) ~from_addr ~to_addr ~kind =
  match t.hooks.on_taken_branch with
  | None -> ()
  | Some f ->
    f ~tid:thread.Thread.tid ~from_addr ~to_addr ~kind
      ~cycles:(Ocolos_uarch.Core.cycles thread.Thread.core)

(* Execute exactly one instruction on [thread]. *)
let step t (thread : Thread.t) =
  let pc = thread.Thread.pc in
  let instr =
    match Addr_space.read_code t.mem pc with
    | Some i -> i
    | None -> fault t thread "thread %d: fetch from unmapped address 0x%x" thread.Thread.tid pc
  in
  let size = Instr.size instr in
  let core = thread.Thread.core in
  let regs = thread.Thread.regs in
  Ocolos_uarch.Core.fetch core ~addr:pc ~size;
  thread.Thread.instret <- thread.Thread.instret + 1;
  t.instret <- t.instret + 1;
  let next = pc + size in
  (match instr with
  | Instr.Nop | Instr.TxMark ->
    if instr = Instr.TxMark then Ocolos_uarch.Core.on_tx core;
    thread.Thread.pc <- next
  | Instr.Alu (op, d, a, b) ->
    regs.(d) <- Instr.eval_alu op regs.(a) regs.(b);
    thread.Thread.pc <- next
  | Instr.Alui (op, d, a, imm) ->
    regs.(d) <- Instr.eval_alu op regs.(a) imm;
    thread.Thread.pc <- next
  | Instr.Movi (d, imm) ->
    regs.(d) <- imm;
    thread.Thread.pc <- next
  | Instr.Load (d, b, off) ->
    let addr = regs.(b) + off in
    Ocolos_uarch.Core.on_mem core ~addr:(addr lsl 3);
    regs.(d) <- Addr_space.read_data t.mem addr;
    thread.Thread.pc <- next
  | Instr.Store (s, b, off) ->
    let addr = regs.(b) + off in
    Ocolos_uarch.Core.on_mem core ~addr:(addr lsl 3);
    Addr_space.write_data t.mem addr regs.(s);
    thread.Thread.pc <- next
  | Instr.Branch (c, r, target) ->
    let taken = Instr.eval_cond c regs.(r) in
    Ocolos_uarch.Core.on_cond_branch core ~pc ~taken ~target;
    if taken then begin
      notify_branch t thread ~from_addr:pc ~to_addr:target ~kind:Cond;
      thread.Thread.pc <- target
    end
    else thread.Thread.pc <- next
  | Instr.Jump target ->
    Ocolos_uarch.Core.on_jump core ~pc ~target;
    notify_branch t thread ~from_addr:pc ~to_addr:target ~kind:Jump;
    thread.Thread.pc <- target
  | Instr.JumpInd r ->
    let target = regs.(r) in
    Ocolos_uarch.Core.on_indirect_jump core ~pc ~target;
    notify_branch t thread ~from_addr:pc ~to_addr:target ~kind:IndJump;
    thread.Thread.pc <- target
  | Instr.Call target ->
    Thread.push_frame thread ~ret_addr:next ~callee_entry:target;
    Ocolos_uarch.Core.on_call core ~pc ~target ~return_addr:next ~indirect:false;
    notify_branch t thread ~from_addr:pc ~to_addr:target ~kind:DirectCall;
    thread.Thread.pc <- target
  | Instr.CallInd r ->
    let target = regs.(r) in
    Thread.push_frame thread ~ret_addr:next ~callee_entry:target;
    Ocolos_uarch.Core.on_call core ~pc ~target ~return_addr:next ~indirect:true;
    notify_branch t thread ~from_addr:pc ~to_addr:target ~kind:IndCall;
    thread.Thread.pc <- target
  | Instr.Ret -> (
    match Thread.pop_frame thread with
    | Some target ->
      Ocolos_uarch.Core.on_ret core ~pc ~target;
      notify_branch t thread ~from_addr:pc ~to_addr:target ~kind:Return;
      thread.Thread.pc <- target
    | None -> thread.Thread.state <- Thread.Halted)
  | Instr.FpCreate (d, target) ->
    let v = match t.hooks.translate_fp with None -> target | Some f -> f target in
    regs.(d) <- v;
    thread.Thread.pc <- next
  | Instr.VtLoad (d, vid, slot) ->
    let addr = Addr_space.vtable_base t.mem vid + slot in
    Ocolos_uarch.Core.on_mem core ~addr:(addr lsl 3);
    regs.(d) <- Addr_space.read_data t.mem addr;
    thread.Thread.pc <- next
  | Instr.Rand (d, bound) ->
    regs.(d) <- Ocolos_util.Rng.int thread.Thread.rng bound;
    thread.Thread.pc <- next
  | Instr.Halt -> thread.Thread.state <- Thread.Halted)

let runnable t = Array.exists Thread.is_running t.threads

(* Round-robin execution until every running thread's core has reached the
   cycle horizon, all threads halt, or the global instruction budget is
   exhausted. The cycle horizon is the simulated wall clock: running every
   core to the same cycle count models threads running concurrently on
   dedicated cores for the same duration. *)
let run ?(quantum = 64) ?(max_instrs = max_int) ~cycle_limit t =
  if t.paused then invalid_arg "Proc.run: process is paused";
  let budget = ref max_instrs in
  let progress = ref true in
  while !progress && !budget > 0 do
    progress := false;
    Array.iter
      (fun thread ->
        if Thread.is_running thread
           && Ocolos_uarch.Core.cycles thread.Thread.core < cycle_limit
        then begin
          let steps = min quantum !budget in
          let i = ref 0 in
          while
            !i < steps
            && Thread.is_running thread
            && Ocolos_uarch.Core.cycles thread.Thread.core < cycle_limit
          do
            step t thread;
            incr i
          done;
          budget := !budget - !i;
          if !i > 0 then progress := true
        end)
      t.threads
  done

(* ptrace-style control: pause stops execution at an instruction boundary
   (callers may then inspect and patch state); resume allows run again. *)
let pause t = t.paused <- true
let resume t = t.paused <- false

(* Advance every running thread's core clock without executing instructions
   (a stop-the-world interval: threads stand still while wall time passes). *)
let stall_all t ~cycles ~category =
  Array.iter
    (fun thread ->
      if Thread.is_running thread then
        Ocolos_uarch.Core.stall thread.Thread.core ~cycles ~category)
    t.threads

let total_counters t =
  Array.fold_left
    (fun acc thread -> Ocolos_uarch.Counters.add acc (Ocolos_uarch.Core.snapshot thread.Thread.core))
    Ocolos_uarch.Counters.zero t.threads

let max_cycles t =
  Array.fold_left
    (fun acc thread -> Float.max acc (Ocolos_uarch.Core.cycles thread.Thread.core))
    0.0 t.threads

let transactions t =
  Array.fold_left
    (fun acc thread -> acc + (Ocolos_uarch.Core.snapshot thread.Thread.core).Ocolos_uarch.Counters.transactions)
    0 t.threads

(* Read a global word, by word offset within the globals region. *)
let read_global t off =
  Addr_space.read_data t.mem (t.binary.Ocolos_binary.Binary.globals_base + off)

let write_global t off v =
  Addr_space.write_data t.mem (t.binary.Ocolos_binary.Binary.globals_base + off) v
