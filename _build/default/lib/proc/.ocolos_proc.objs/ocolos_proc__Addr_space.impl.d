lib/proc/addr_space.ml: Array Binary Hashtbl Instr List Ocolos_binary Ocolos_isa
