lib/proc/thread.ml: Array Instr List Ocolos_isa Ocolos_uarch Ocolos_util
