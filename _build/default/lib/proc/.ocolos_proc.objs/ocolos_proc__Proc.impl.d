lib/proc/proc.ml: Addr_space Array Float Fmt Instr Ocolos_binary Ocolos_isa Ocolos_uarch Ocolos_util Thread
