lib/proc/proc.mli: Addr_space Ocolos_binary Ocolos_uarch Thread
