lib/proc/thread.mli: Ocolos_uarch Ocolos_util
