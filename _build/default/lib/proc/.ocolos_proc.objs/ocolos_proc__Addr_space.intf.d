lib/proc/addr_space.mli: Hashtbl Ocolos_binary Ocolos_isa
