lib/workloads/workload.ml: Array Binary Emit Fmt Gen Input Ir List Ocolos_binary Ocolos_isa Ocolos_proc Ocolos_uarch Proc Thread
