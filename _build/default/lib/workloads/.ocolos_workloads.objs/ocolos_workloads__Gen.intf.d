lib/workloads/gen.mli: Input Ocolos_isa
