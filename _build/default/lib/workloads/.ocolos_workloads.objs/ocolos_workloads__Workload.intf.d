lib/workloads/workload.mli: Gen Input Ocolos_binary Ocolos_isa Ocolos_proc Ocolos_uarch
