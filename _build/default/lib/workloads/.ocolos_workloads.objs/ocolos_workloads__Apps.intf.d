lib/workloads/apps.mli: Input Workload
