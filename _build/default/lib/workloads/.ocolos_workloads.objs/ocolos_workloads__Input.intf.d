lib/workloads/input.mli:
