lib/workloads/apps.ml: Gen Input List Printf Workload
