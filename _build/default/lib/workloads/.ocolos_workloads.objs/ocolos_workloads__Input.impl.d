lib/workloads/input.ml: Array List
