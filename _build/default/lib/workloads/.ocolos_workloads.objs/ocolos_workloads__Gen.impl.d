lib/workloads/gen.ml: Array Hashtbl Input Instr Ir List Ocolos_isa Ocolos_util Printf
