(* A benchmark application: generated program + compiled binary + its input
   set, plus the driver glue that launches processes and applies inputs
   (the Sysbench/YCSB/memaslap client analog). *)

open Ocolos_isa
open Ocolos_binary
open Ocolos_proc

(* Thread-local regions: each thread's r11 points at a private heap slice. *)
let heap_base_words = 0x400000
let thread_region_words = 1 lsl 20

type t = {
  name : string;
  gen : Gen.t;
  program : Ir.program; (* post jump-table lowering if requested *)
  binary : Binary.t; (* original (unoptimized) image *)
  inputs : Input.t list;
  nthreads : int;
}

(* Compile a generated application. [no_jump_tables] is the paper's
   required flag for OCOLOS target binaries. *)
let build ?(no_jump_tables = true) ~name ~inputs ~nthreads (gen : Gen.t) =
  let program =
    if no_jump_tables then Ir.lower_jump_tables gen.Gen.program else gen.Gen.program
  in
  Ir.validate program;
  let emitted = Emit.emit_default ~name program in
  { name; gen; program; binary = emitted.Emit.binary; inputs; nthreads }

let find_input t name =
  match List.find_opt (fun (i : Input.t) -> i.Input.name = name) t.inputs with
  | Some i -> i
  | None -> Fmt.invalid_arg "workload %s has no input %s" t.name name

(* Write an input's parameter vector into a process's globals. Callable at
   any time: inputs can shift under a running server. *)
let set_input t (proc : Proc.t) (input : Input.t) =
  List.iter (fun (slot, v) -> Proc.write_global proc slot v) (Gen.make_params t.gen input)

(* Initialize per-thread state: the r11 thread-local base register. *)
let init_threads (proc : Proc.t) =
  Array.iteri
    (fun tid (thread : Thread.t) ->
      thread.Thread.regs.(Gen.reg_tls) <- heap_base_words + (tid * thread_region_words))
    proc.Proc.threads

(* Launch a process running [binary] (defaults to the workload's original
   binary) under [input]. *)
let launch ?binary ?nthreads ?(cfg = Ocolos_uarch.Config.broadwell) ?(seed = 1234) t ~input =
  let binary = match binary with Some b -> b | None -> t.binary in
  let nthreads = match nthreads with Some n -> n | None -> t.nthreads in
  let proc = Proc.load ~nthreads ~cfg ~seed binary in
  init_threads proc;
  set_input t proc input;
  proc

(* Per-thread checksums (r12): layout-independent on finite runs, used by
   the semantics-preservation tests. *)
let checksums (proc : Proc.t) =
  Array.to_list
    (Array.map (fun (thread : Thread.t) -> thread.Thread.regs.(Gen.reg_checksum)) proc.Proc.threads)
