(** A workload input: the analog of a Sysbench / YCSB / memaslap input or a
    Verilator benchmark program. Inputs never change the binary — they are
    vectors of values written into the process's global parameter slots,
    steering transaction mixes and branch biases. *)

type t = {
  name : string;
  mix : float array;  (** probability of each transaction type *)
  bias_seed : int;  (** per-input branch-bias assignment *)
  scan_len : int;  (** elements touched per scan transaction *)
}

val make : ?scan_len:int -> name:string -> mix:float array -> bias_seed:int -> unit -> t

(** Mix with probability 1 for one transaction type. *)
val pure : n_types:int -> int -> float array

(** Normalized mix from (type, weight) pairs. Raises on a zero total. *)
val weighted : n_types:int -> (int * float) list -> float array
