(** A benchmark application: generated program + compiled binary + input
    set, plus the driver glue that launches processes and applies inputs
    (the Sysbench/YCSB/memaslap client analog). *)

val heap_base_words : int
val thread_region_words : int

type t = {
  name : string;
  gen : Gen.t;
  program : Ocolos_isa.Ir.program;  (** post jump-table lowering *)
  binary : Ocolos_binary.Binary.t;  (** the original (unoptimized) image *)
  inputs : Input.t list;
  nthreads : int;
}

(** Compile a generated application. [no_jump_tables] (default true) is the
    paper's required flag for OCOLOS target binaries. *)
val build :
  ?no_jump_tables:bool -> name:string -> inputs:Input.t list -> nthreads:int -> Gen.t -> t

(** Find an input by name. Raises [Invalid_argument] if absent. *)
val find_input : t -> string -> Input.t

(** Write an input's parameter vector into a running process's globals —
    inputs can shift under a live server. *)
val set_input : t -> Ocolos_proc.Proc.t -> Input.t -> unit

(** Initialize each thread's r11 thread-local base register. *)
val init_threads : Ocolos_proc.Proc.t -> unit

(** Launch a process running [binary] (default: the workload's original
    binary) under [input], with threads initialized. *)
val launch :
  ?binary:Ocolos_binary.Binary.t ->
  ?nthreads:int ->
  ?cfg:Ocolos_uarch.Config.t ->
  ?seed:int ->
  t ->
  input:Input.t ->
  Ocolos_proc.Proc.t

(** Per-thread checksums (r12): layout-independent on finite runs; the
    semantics-preservation tests compare these. *)
val checksums : Ocolos_proc.Proc.t -> int list
