(* A workload input: the analog of a Sysbench / YCSB / memaslap input or a
   Verilator benchmark program. Inputs never change the binary; they change
   the values the driver writes into the process's global parameter slots,
   which steer transaction mixes and branch biases. *)

type t = {
  name : string;
  mix : float array; (* probability of each transaction type *)
  bias_seed : int; (* per-input branch-bias assignment *)
  scan_len : int; (* elements touched per scan transaction *)
}

let make ?(scan_len = 0) ~name ~mix ~bias_seed () = { name; mix; bias_seed; scan_len }

(* A single-type mix: probability 1 for [typ]. *)
let pure ~n_types typ =
  Array.init n_types (fun i -> if i = typ then 1.0 else 0.0)

(* Normalized weighted mix from (type, weight) pairs. *)
let weighted ~n_types pairs =
  let mix = Array.make n_types 0.0 in
  List.iter (fun (t, w) -> mix.(t) <- mix.(t) +. w) pairs;
  let total = Array.fold_left ( +. ) 0.0 mix in
  if total <= 0.0 then invalid_arg "Input.weighted: zero total";
  Array.map (fun w -> w /. total) mix
