(* Generic set-associative cache with true-LRU replacement.

   Used for the L1i, L1d and unified L2 (with 64-byte lines) and for the
   iTLB (a "cache" of 4 KiB pages). Tracks hit/miss counters. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bits : int;
  tags : int array array; (* tags.(set).(way); -1 = invalid *)
  stamp : int array array; (* LRU timestamps *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~name ~sets ~ways ~line_bytes =
  if not (is_power_of_two sets) then invalid_arg "Cache.create: sets must be a power of two";
  if not (is_power_of_two line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  if ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  { name;
    sets;
    ways;
    line_bits = log2 line_bytes;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    stamp = Array.init sets (fun _ -> Array.make ways 0);
    tick = 0;
    hits = 0;
    misses = 0 }

let of_size ~name ~size_bytes ~ways ~line_bytes =
  let lines = size_bytes / line_bytes in
  let sets = max 1 (lines / ways) in
  create ~name ~sets ~ways ~line_bytes

let line_of t addr = addr lsr t.line_bits

let set_of t line = line land (t.sets - 1)

(* Access a byte address; returns true on hit. Miss fills the line, evicting
   the least-recently-used way. *)
let access t addr =
  t.tick <- t.tick + 1;
  let line = line_of t addr in
  let set = set_of t line in
  let tags = t.tags.(set) and stamp = t.stamp.(set) in
  let rec find w = if w >= t.ways then -1 else if tags.(w) = line then w else find (w + 1) in
  let w = find 0 in
  if w >= 0 then begin
    stamp.(w) <- t.tick;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* Victim: first invalid way if any, else least-recently-used. *)
    let victim = ref 0 in
    (try
       for i = 0 to t.ways - 1 do
         if tags.(i) = -1 then begin
           victim := i;
           raise Exit
         end;
         if stamp.(i) < stamp.(!victim) then victim := i
       done
     with Exit -> ());
    let victim = !victim in
    tags.(victim) <- line;
    stamp.(victim) <- t.tick;
    false
  end

(* Fill a line without touching the hit/miss counters: hardware prefetch.
   Returns true if the line was already resident. *)
let prefetch t addr =
  let hits = t.hits and misses = t.misses in
  let hit = access t addr in
  t.hits <- hits;
  t.misses <- misses;
  hit

(* Probe without updating state or counters. *)
let probe t addr =
  let line = line_of t addr in
  let set = set_of t line in
  let tags = t.tags.(set) in
  let rec find w = if w >= t.ways then false else tags.(w) = line || find (w + 1) in
  find 0

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) t.tags;
  reset_counters t

let accesses t = t.hits + t.misses

let miss_rate t =
  let n = accesses t in
  if n = 0 then 0.0 else float_of_int t.misses /. float_of_int n

let size_bytes t = t.sets * t.ways * (1 lsl t.line_bits)
