(* Core front-end model parameters.

   Defaults resemble the paper's Broadwell Xeon E5-2620v4 testbed, with BTB
   and predictor capacities scaled in proportion to our scaled-down workload
   code footprints. *)

type t = {
  issue_width : int; (* retire slots per cycle *)
  line_bytes : int;
  l1i_bytes : int;
  l1i_ways : int;
  l1d_bytes : int;
  l1d_ways : int;
  l2_bytes : int;
  l2_ways : int;
  l3_bytes : int; (* per-core slice of the shared L3 *)
  l3_ways : int;
  page_bytes : int;
  itlb_entries : int;
  itlb_ways : int;
  btb_entries : int;
  btb_ways : int;
  gshare_bits : int;
  ras_depth : int;
  l2_latency : int; (* extra cycles for an L1 miss that hits L2 *)
  l3_latency : int; (* extra cycles for an L2 miss that hits L3 *)
  dram_latency : int; (* extra cycles for an L3 miss *)
  itlb_walk_latency : int;
  next_line_prefetch : bool; (* L1i next-line prefetcher: sequential code
                                hides its own fetch misses *)
  taken_bubble : int; (* fetch bubble per taken transfer *)
  btb_miss_penalty : int; (* fetch redirect on a taken transfer absent from BTB *)
  mispredict_penalty : int; (* pipeline flush *)
  dram_mlp : int; (* memory-level parallelism: data-miss latency is
                     overlapped by this factor (instruction fetches block) *)
  dram_base_interval : int; (* controller service interval for spread-out requests *)
  dram_burst_interval : int; (* service interval under bank conflicts *)
  dram_burst_window : int; (* demand-time gap below which requests conflict *)
}

let broadwell =
  { issue_width = 4;
    line_bytes = 64;
    l1i_bytes = 32 * 1024;
    l1i_ways = 8;
    l1d_bytes = 32 * 1024;
    l1d_ways = 8;
    l2_bytes = 256 * 1024;
    l2_ways = 8;
    l3_bytes = 1024 * 1024;
    l3_ways = 16;
    page_bytes = 4096;
    itlb_entries = 64;
    itlb_ways = 4;
    btb_entries = 1024;
    btb_ways = 4;
    gshare_bits = 16;
    ras_depth = 16;
    l2_latency = 12;
    l3_latency = 35;
    dram_latency = 150;
    itlb_walk_latency = 30;
    next_line_prefetch = true;
    taken_bubble = 1;
    btb_miss_penalty = 8;
    mispredict_penalty = 14;
    dram_mlp = 4;
    dram_base_interval = 100;
    dram_burst_interval = 310;
    dram_burst_window = 120 }

(* A tiny configuration for unit tests: easy to reason about capacities. *)
let tiny =
  { broadwell with
    l1i_bytes = 512;
    l1i_ways = 2;
    l1d_bytes = 512;
    l1d_ways = 2;
    l2_bytes = 2048;
    l2_ways = 2;
    l3_bytes = 8192;
    l3_ways = 2;
    itlb_entries = 4;
    itlb_ways = 4;
    btb_entries = 16;
    btb_ways = 2;
    gshare_bits = 6;
    ras_depth = 4 }
