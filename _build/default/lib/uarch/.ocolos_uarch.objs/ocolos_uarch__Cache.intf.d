lib/uarch/cache.mli:
