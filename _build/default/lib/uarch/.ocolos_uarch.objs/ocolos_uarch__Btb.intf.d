lib/uarch/btb.mli:
