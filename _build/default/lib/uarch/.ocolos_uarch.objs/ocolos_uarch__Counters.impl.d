lib/uarch/counters.ml: Fmt
