lib/uarch/core.mli: Config Counters
