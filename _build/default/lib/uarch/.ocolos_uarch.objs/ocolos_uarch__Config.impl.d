lib/uarch/config.ml:
