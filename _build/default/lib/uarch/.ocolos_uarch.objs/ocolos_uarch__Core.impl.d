lib/uarch/core.ml: Btb Cache Config Counters Float Predictor
