lib/uarch/counters.mli: Format
