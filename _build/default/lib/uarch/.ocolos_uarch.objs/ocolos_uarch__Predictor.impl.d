lib/uarch/predictor.ml: Array
