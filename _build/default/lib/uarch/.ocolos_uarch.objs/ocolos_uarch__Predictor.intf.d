lib/uarch/predictor.mli:
