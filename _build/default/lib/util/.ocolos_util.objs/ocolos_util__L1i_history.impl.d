lib/util/l1i_history.ml:
