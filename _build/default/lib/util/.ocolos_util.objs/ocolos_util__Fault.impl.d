lib/util/fault.ml: Fmt Hashtbl List Rng String
