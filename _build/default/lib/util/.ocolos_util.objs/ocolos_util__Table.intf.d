lib/util/table.mli:
