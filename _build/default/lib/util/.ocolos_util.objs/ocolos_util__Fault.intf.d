lib/util/fault.mli: Format
