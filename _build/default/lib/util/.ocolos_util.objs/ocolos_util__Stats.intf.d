lib/util/stats.mli:
