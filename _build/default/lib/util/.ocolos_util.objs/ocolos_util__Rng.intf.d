lib/util/rng.mli:
