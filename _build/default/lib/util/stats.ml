(* Small statistics toolkit used by the benchmark harness. *)

let mean xs =
  match Array.length xs with
  | 0 -> invalid_arg "Stats.mean: empty"
  | n -> Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

(* Nearest-rank percentile over a copy of the input. *)
let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let median xs = percentile xs 50.0

let geomean xs =
  match Array.length xs with
  | 0 -> invalid_arg "Stats.geomean: empty"
  | n ->
    let acc = Array.fold_left (fun a x -> a +. log x) 0.0 xs in
    exp (acc /. float_of_int n)

type linear_fit = { slope : float; intercept : float; r2 : float }

(* Ordinary least squares y = slope * x + intercept. *)
let linear_regression xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Stats.linear_regression: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_regression: need >= 2 points";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  let slope = if !sxx = 0.0 then 0.0 else !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 =
    if !sxx = 0.0 || !syy = 0.0 then 1.0
    else !sxy *. !sxy /. (!sxx *. !syy)
  in
  { slope; intercept; r2 }

(* Two-feature linear classifier trained by the perceptron rule; used for the
   Fig. 9 reproduction (classify speedup from TopDown metrics). *)
type classifier = { w1 : float; w2 : float; bias : float }

let classify c x1 x2 = (c.w1 *. x1) +. (c.w2 *. x2) +. c.bias > 0.0

let train_perceptron ?(epochs = 2000) ?(lr = 0.01) points =
  let c = ref { w1 = 0.0; w2 = 0.0; bias = 0.0 } in
  for _ = 1 to epochs do
    List.iter
      (fun (x1, x2, label) ->
        let predicted = classify !c x1 x2 in
        if predicted <> label then begin
          let sign = if label then 1.0 else -1.0 in
          c :=
            { w1 = !c.w1 +. (lr *. sign *. x1);
              w2 = !c.w2 +. (lr *. sign *. x2);
              bias = !c.bias +. (lr *. sign) }
        end)
      points
  done;
  !c

let accuracy c points =
  let correct =
    List.fold_left
      (fun acc (x1, x2, label) -> if classify c x1 x2 = label then acc + 1 else acc)
      0 points
  in
  float_of_int correct /. float_of_int (List.length points)
