(* Deterministic splitmix64 PRNG. All simulation randomness flows through
   this module so that every experiment is reproducible from a seed. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A fresh generator whose stream is independent of the parent's future. *)
let split t = { state = next_int64 t }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t = float_of_int (bits t) /. 4611686018427387904.0

let bool t p = float t < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Sample an index according to non-negative weights. *)
let weighted_index t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.weighted_index: weights sum to zero";
  let x = float t *. total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0
