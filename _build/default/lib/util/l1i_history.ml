(* Per-core L1 instruction cache capacity of Intel and AMD server
   microarchitectures over time (paper Fig. 1 motivation data). *)

type point = { year : int; vendor : string; uarch : string; l1i_kib : int }

let data =
  [ { year = 2006; vendor = "Intel"; uarch = "Core (Merom)"; l1i_kib = 32 };
    { year = 2008; vendor = "Intel"; uarch = "Nehalem"; l1i_kib = 32 };
    { year = 2011; vendor = "Intel"; uarch = "Sandy Bridge"; l1i_kib = 32 };
    { year = 2013; vendor = "Intel"; uarch = "Haswell"; l1i_kib = 32 };
    { year = 2015; vendor = "Intel"; uarch = "Broadwell"; l1i_kib = 32 };
    { year = 2017; vendor = "Intel"; uarch = "Skylake-SP"; l1i_kib = 32 };
    { year = 2019; vendor = "Intel"; uarch = "Cascade Lake"; l1i_kib = 32 };
    { year = 2021; vendor = "Intel"; uarch = "Ice Lake-SP"; l1i_kib = 32 };
    { year = 2007; vendor = "AMD"; uarch = "Barcelona"; l1i_kib = 64 };
    { year = 2011; vendor = "AMD"; uarch = "Bulldozer"; l1i_kib = 64 };
    { year = 2017; vendor = "AMD"; uarch = "Zen"; l1i_kib = 64 };
    { year = 2019; vendor = "AMD"; uarch = "Zen 2"; l1i_kib = 32 };
    { year = 2020; vendor = "AMD"; uarch = "Zen 3"; l1i_kib = 32 } ]
