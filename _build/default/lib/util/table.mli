(** Plain-text aligned tables used by the benchmark harness to print the
    paper's tables and figure series. *)

type align = Left | Right

(** [render ~headers rows] lays out a table; columns default to left-aligned
    first column, right-aligned rest, overridable with [aligns]. *)
val render : ?aligns:align array -> headers:string array -> string array list -> string

val print : ?aligns:align array -> headers:string array -> string array list -> unit

val fmt_f : ?digits:int -> float -> string
val fmt_speedup : float -> string

(** Fraction in 0..1 rendered as a percentage. *)
val fmt_pct : float -> string

(** Integer with thousands separators. *)
val fmt_int : int -> string

(** Print a visually distinct section banner. *)
val section : string -> unit
