(** Deterministic splitmix64 pseudo-random number generator.

    Every source of randomness in the simulator goes through this module so
    that experiments are exactly reproducible from a seed. *)

type t

(** [create seed] makes a generator whose stream is a pure function of
    [seed]. *)
val create : int -> t

(** Independent copy: the copy replays the same future stream. *)
val copy : t -> t

(** [split t] derives a generator whose stream is statistically independent
    of [t]'s future output, advancing [t] once. *)
val split : t -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** 62 random bits as a non-negative [int]. *)
val bits : t -> int

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)
val int_in : t -> int -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** [bool t p] is true with probability [p]. *)
val bool : t -> float -> bool

(** Uniformly chosen array element. Raises on empty arrays. *)
val choose : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [weighted_index t w] samples index [i] with probability
    [w.(i) / sum w]. Raises if the weights sum to zero. *)
val weighted_index : t -> float array -> int
