(** Deterministic, seed-driven fault injection.

    A registry of named injection points. Instrumented code calls {!cut} at
    each point; an armed schedule decides — as a pure function of the seed
    and the per-point hit count — whether that hit raises {!Injected}.
    Unarmed points cost one counter increment and nothing else, so
    instrumentation can stay on in production code paths. *)

type schedule =
  | Never
  | Nth of int  (** fire exactly once, on the nth hit (1-based) *)
  | Every of int  (** fire on every kth hit *)
  | Prob of float  (** each hit fires with probability p, seeded *)

type t

(** Raised by {!cut} when the point's schedule fires: point name and the hit
    count at which it fired. *)
exception Injected of string * int

val create : ?seed:int -> unit -> t

val arm : t -> string -> schedule -> unit
val disarm : t -> string -> unit

(** Zero all hit/fired counters; schedules stay armed. *)
val reset : t -> unit

(** Register a hit at a named point; raises {!Injected} when the armed
    schedule fires. *)
val cut : t -> string -> unit

val hits : t -> string -> int
val fired : t -> string -> int
val total_fired : t -> int

(** Every point ever armed or hit, sorted. *)
val points : t -> string list

val pp_schedule : Format.formatter -> schedule -> unit

(** Parse-and-arm a CLI spec: ["point"] (= nth 1), ["point:N"],
    ["point:every:K"] or ["point:p:P"]. Returns the point name. *)
val parse_arm : t -> string -> (string, string) result
