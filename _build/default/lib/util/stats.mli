(** Statistics helpers for the benchmark harness. *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

(** Nearest-rank percentile; [percentile xs 95.0] is the 95th percentile. *)
val percentile : float array -> float -> float

val median : float array -> float
val geomean : float array -> float

type linear_fit = { slope : float; intercept : float; r2 : float }

(** Ordinary least squares fit of [y = slope * x + intercept]. *)
val linear_regression : float array -> float array -> linear_fit

(** Two-feature linear classifier (Fig. 9: TopDown front-end latency and
    retiring percentages predict whether a workload speeds up). *)
type classifier = { w1 : float; w2 : float; bias : float }

val classify : classifier -> float -> float -> bool
val train_perceptron : ?epochs:int -> ?lr:float -> (float * float * bool) list -> classifier
val accuracy : classifier -> (float * float * bool) list -> float
