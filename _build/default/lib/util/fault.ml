(* Deterministic, seed-driven fault injection.

   A registry of named injection points. Code under test calls [cut] at
   each point; armed schedules decide — as a pure function of the seed and
   the per-point hit count — whether the hit raises [Injected]. All
   randomness flows through {!Rng}, so a failing run replays exactly from
   (seed, point, schedule).

   The registry never perturbs execution when a point is unarmed: [cut] on
   an unarmed (or unknown) point only bumps a counter. *)

type schedule =
  | Never
  | Nth of int (* fire exactly once, on the nth hit (1-based) *)
  | Every of int (* fire on every kth hit *)
  | Prob of float (* each hit fires with probability p, seeded *)

type point = {
  mutable schedule : schedule;
  mutable hits : int;
  mutable fired : int;
  rng : Rng.t; (* private stream for [Prob]; a pure function of (seed, name) *)
}

type t = { seed : int; table : (string, point) Hashtbl.t }

exception Injected of string * int

let create ?(seed = 0) () = { seed; table = Hashtbl.create 16 }

let state t name =
  match Hashtbl.find_opt t.table name with
  | Some p -> p
  | None ->
    let p =
      { schedule = Never;
        hits = 0;
        fired = 0;
        rng = Rng.create (t.seed lxor Hashtbl.hash name) }
    in
    Hashtbl.add t.table name p;
    p

let arm t name schedule = (state t name).schedule <- schedule
let disarm t name = (state t name).schedule <- Never

let reset t =
  Hashtbl.iter
    (fun _ p ->
      p.hits <- 0;
      p.fired <- 0)
    t.table

let should_fire p =
  match p.schedule with
  | Never -> false
  | Nth n -> p.hits = n && p.fired = 0
  | Every k -> k > 0 && p.hits mod k = 0
  | Prob pr -> Rng.bool p.rng pr

let cut t name =
  let p = state t name in
  p.hits <- p.hits + 1;
  if should_fire p then begin
    p.fired <- p.fired + 1;
    raise (Injected (name, p.hits))
  end

let hits t name = (state t name).hits
let fired t name = (state t name).fired
let total_fired t = Hashtbl.fold (fun _ p acc -> acc + p.fired) t.table 0
let points t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.table [])

let pp_schedule fmt = function
  | Never -> Fmt.string fmt "never"
  | Nth n -> Fmt.pf fmt "nth:%d" n
  | Every k -> Fmt.pf fmt "every:%d" k
  | Prob p -> Fmt.pf fmt "p:%g" p

(* "point", "point:N", "point:every:K", "point:p:P" *)
let parse_arm t spec =
  let fail () = Error (Fmt.str "bad fault spec %S (want POINT[:N|:every:K|:p:P])" spec) in
  match String.split_on_char ':' spec with
  | [ point ] when point <> "" ->
    arm t point (Nth 1);
    Ok point
  | [ point; n ] when point <> "" -> (
    match int_of_string_opt n with
    | Some n when n >= 1 ->
      arm t point (Nth n);
      Ok point
    | Some _ | None -> fail ())
  | [ point; "every"; k ] when point <> "" -> (
    match int_of_string_opt k with
    | Some k when k >= 1 ->
      arm t point (Every k);
      Ok point
    | Some _ | None -> fail ())
  | [ point; "p"; p ] when point <> "" -> (
    match float_of_string_opt p with
    | Some p when p >= 0.0 && p <= 1.0 ->
      arm t point (Prob p);
      Ok point
    | Some _ | None -> fail ())
  | _ -> fail ()
