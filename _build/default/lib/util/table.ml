(* Column-aligned plain-text tables for the benchmark harness output. *)

type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(aligns = [||]) ~headers rows =
  let ncols = Array.length headers in
  let align_of i =
    if i < Array.length aligns then aligns.(i) else if i = 0 then Left else Right
  in
  let widths = Array.map String.length headers in
  List.iter
    (fun row ->
      Array.iteri
        (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let buf = Buffer.create 256 in
  let emit_row row =
    Array.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (align_of i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  emit_row (Array.init ncols (fun i -> String.make widths.(i) '-'));
  List.iter emit_row rows;
  Buffer.contents buf

let print ?aligns ~headers rows = print_string (render ?aligns ~headers rows)

let fmt_f ?(digits = 3) x = Printf.sprintf "%.*f" digits x

let fmt_speedup x = Printf.sprintf "%.2fx" x

let fmt_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let fmt_int n =
  (* Group thousands for readability: 31677 -> "31,677". *)
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  (if n < 0 then "-" else "") ^ Buffer.contents buf

let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" bar title bar
