lib/isa/encode.mli: Buffer Bytes Instr
