lib/isa/ir.mli: Instr
