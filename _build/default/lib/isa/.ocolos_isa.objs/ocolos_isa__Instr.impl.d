lib/isa/instr.ml: Fmt
