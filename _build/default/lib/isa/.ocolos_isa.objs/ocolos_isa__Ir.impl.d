lib/isa/ir.ml: Array Fmt Instr List
