lib/isa/encode.ml: Buffer Bytes Char Fmt Instr
