(** Pre-layout program representation.

    The workload "compiler" produces this IR; {!Ocolos_binary.Emit}
    linearizes it into machine code given a layout. Control flow between
    basic blocks is symbolic (block ids) and calls reference functions by id,
    so one program can be emitted under arbitrary layouts. *)

type sinstr =
  | Plain of Instr.t  (** any non-control-flow instruction *)
  | SCall of int  (** direct call to function [fid] *)
  | SCallInd of Instr.reg  (** indirect call through a register *)
  | SFpCreate of Instr.reg * int  (** dst <- address of function [fid] *)

type terminator =
  | Tjump of int
  | Tbranch of Instr.cond * Instr.reg * int * int  (** taken bid, fallthrough bid *)
  | Tjump_table of Instr.reg * int array
  | Tret
  | Thalt

type block = { bid : int; body : sinstr list; term : terminator }
type func = { fid : int; fname : string; blocks : block array }

type program = {
  funcs : func array;  (** indexed by fid *)
  vtables : int array array;  (** vid -> slot -> fid *)
  entry_fid : int;
  globals_words : int;  (** size of the global data region, in words *)
  global_init : (int * int) list;  (** (word offset, initial value) pairs *)
}

val block_successors : block -> int list
val func_instr_count : func -> int
val program_instr_count : program -> int

exception Invalid of string

(** Structural validation; raises {!Invalid} on malformed programs. *)
val validate : program -> unit

(** Scratch register reserved for jump-table lowering. *)
val scratch_reg : int

(** Lower all [Tjump_table] terminators into compare-and-branch chains — the
    [-fno-jump-tables] compilation mode OCOLOS requires of target binaries.
    Existing block ids are preserved; new blocks are appended. *)
val lower_jump_tables : program -> program

val lower_jump_tables_func : func -> func
val has_jump_tables : program -> bool
