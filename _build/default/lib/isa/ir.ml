(* Pre-layout program representation.

   The workload "compiler" produces this IR; the emitter linearizes it into
   machine code given a layout. Control flow between basic blocks is
   symbolic (block ids), and calls reference functions by id, so the same
   program can be emitted under arbitrary layouts. *)

type sinstr =
  | Plain of Instr.t (* must not be control flow *)
  | SCall of int (* direct call to function [fid] *)
  | SCallInd of Instr.reg (* indirect call through a register *)
  | SFpCreate of Instr.reg * int (* dst <- &funcs.(fid) *)

type terminator =
  | Tjump of int (* unconditional transfer to block id *)
  | Tbranch of Instr.cond * Instr.reg * int * int (* taken bid, fallthrough bid *)
  | Tjump_table of Instr.reg * int array (* computed goto over block ids *)
  | Tret
  | Thalt

type block = { bid : int; body : sinstr list; term : terminator }

type func = { fid : int; fname : string; blocks : block array }

type program = {
  funcs : func array; (* indexed by fid *)
  vtables : int array array; (* vid -> slot -> fid *)
  entry_fid : int;
  globals_words : int; (* size of the global data region, in words *)
  global_init : (int * int) list; (* word offset, initial value *)
}

let block_successors block =
  match block.term with
  | Tjump b -> [ b ]
  | Tbranch (_, _, taken, fall) -> [ taken; fall ]
  | Tjump_table (_, targets) -> Array.to_list targets
  | Tret | Thalt -> []

let func_instr_count f =
  Array.fold_left (fun acc b -> acc + List.length b.body + 1) 0 f.blocks

let program_instr_count p = Array.fold_left (fun acc f -> acc + func_instr_count f) 0 p.funcs

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

(* Structural validation: ids in range, no control-flow instructions hidden
   inside [Plain], vtable slots referencing real functions. *)
let validate p =
  let nfuncs = Array.length p.funcs in
  if p.entry_fid < 0 || p.entry_fid >= nfuncs then invalid "entry_fid %d out of range" p.entry_fid;
  Array.iteri
    (fun fid f ->
      if f.fid <> fid then invalid "function %s: fid %d at index %d" f.fname f.fid fid;
      if Array.length f.blocks = 0 then invalid "function %s has no blocks" f.fname;
      let nblocks = Array.length f.blocks in
      let check_bid b =
        if b < 0 || b >= nblocks then invalid "function %s: block id %d out of range" f.fname b
      in
      Array.iteri
        (fun bid blk ->
          if blk.bid <> bid then invalid "function %s: bid %d at index %d" f.fname blk.bid bid;
          List.iter
            (fun si ->
              match si with
              | Plain i ->
                if Instr.is_control_flow i then
                  invalid "function %s: control-flow instr %s in Plain" f.fname (Instr.to_string i)
              | SCallInd _ -> ()
              | SCall callee | SFpCreate (_, callee) ->
                if callee < 0 || callee >= nfuncs then
                  invalid "function %s: callee fid %d out of range" f.fname callee)
            blk.body;
          List.iter check_bid (block_successors blk))
        f.blocks)
    p.funcs;
  Array.iteri
    (fun vid vt ->
      Array.iteri
        (fun slot fid ->
          if fid < 0 || fid >= nfuncs then
            invalid "vtable %d slot %d: fid %d out of range" vid slot fid)
        vt)
    p.vtables

(* Lower jump tables into compare-and-branch trees (the -fno-jump-tables
   compilation mode that OCOLOS requires of its target binaries). Uses r15 as
   a scratch register. New blocks are appended, so existing block ids stay
   stable. *)
let scratch_reg = 15

let lower_jump_tables_func f =
  let extra = ref [] in
  let next_bid = ref (Array.length f.blocks) in
  let fresh_block body term =
    let bid = !next_bid in
    incr next_bid;
    extra := { bid; body; term } :: !extra;
    bid
  in
  (* Chain block i tests selector == i, branching to targets.(i), else to the
     next test; the last test falls through to the final target. *)
  let lower_table sel targets =
    let n = Array.length targets in
    if n = 0 then invalid "jump table with no targets";
    if n = 1 then ([], Tjump targets.(0))
    else begin
      let rec chain i =
        (* Returns the block id performing tests from index i upward. *)
        if i = n - 1 then targets.(i)
        else
          let rest = chain (i + 1) in
          fresh_block
            [ Plain (Instr.Alui (Instr.Sub, scratch_reg, sel, i)) ]
            (Tbranch (Instr.Eq, scratch_reg, targets.(i), rest))
      in
      let rest = chain 1 in
      ( [ Plain (Instr.Alui (Instr.Sub, scratch_reg, sel, 0)) ],
        Tbranch (Instr.Eq, scratch_reg, targets.(0), rest) )
    end
  in
  let blocks =
    Array.map
      (fun blk ->
        match blk.term with
        | Tjump_table (sel, targets) ->
          let prefix, term = lower_table sel targets in
          { blk with body = blk.body @ prefix; term }
        | Tjump _ | Tbranch _ | Tret | Thalt -> blk)
      f.blocks
  in
  { f with blocks = Array.append blocks (Array.of_list (List.rev !extra)) }

let lower_jump_tables p = { p with funcs = Array.map lower_jump_tables_func p.funcs }

let has_jump_tables p =
  Array.exists
    (fun f ->
      Array.exists
        (fun b -> match b.term with Tjump_table _ -> true | Tjump _ | Tbranch _ | Tret | Thalt -> false)
        f.blocks)
    p.funcs
