(** Instruction record codec for on-disk binary images: a one-byte opcode
    (ALU op / branch condition folded into the low bits) followed by
    zigzag-LEB128 operands. This is a file format — the performance model's
    byte-accurate instruction sizes remain {!Instr.size}. *)

exception Decode_error of string

(** Append one instruction's record. *)
val encode : Buffer.t -> Instr.t -> unit

type reader

val reader_of_bytes : Bytes.t -> reader
val at_end : reader -> bool

(** Read one instruction record; raises {!Decode_error} on malformed
    input. *)
val decode : reader -> Instr.t

(**/**)

val put_varint : Buffer.t -> int -> unit
val read_varint : reader -> int

(** Read one raw byte (for embedded strings). *)
val read_byte : reader -> int
