(* Instruction record codec.

   Binaries serialize to byte images (see Ocolos_binary.Serialize) using a
   compact record encoding: a one-byte opcode (ALU operation / branch
   condition folded into the low bits) followed by zigzag-LEB128 operands.
   This is a *file format*: the performance model's byte-accurate notion of
   instruction size remains {!Instr.size} (x86-like fixed encodings), while
   the on-disk records can carry full-width absolute addresses. *)

open Instr

exception Decode_error of string

let decode_error fmt = Fmt.kstr (fun s -> raise (Decode_error s)) fmt

let op_nop = 0x00
let op_alu = 0x10 (* + alu_op *)
let op_alui = 0x20 (* + alu_op *)
let op_movi = 0x30
let op_load = 0x31
let op_store = 0x32
let op_branch = 0x40 (* + cond *)
let op_jump = 0x50
let op_jumpind = 0x51
let op_call = 0x52
let op_callind = 0x53
let op_ret = 0x54
let op_fpcreate = 0x55
let op_vtload = 0x60
let op_rand = 0x61
let op_txmark = 0x70
let op_halt = 0x71

let alu_code = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Xor -> 3
  | And -> 4
  | Or -> 5
  | Shl -> 6
  | Shr -> 7

let alu_of_code = function
  | 0 -> Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> Xor
  | 4 -> And
  | 5 -> Or
  | 6 -> Shl
  | 7 -> Shr
  | c -> decode_error "bad alu op %d" c

let cond_code = function Eq -> 0 | Ne -> 1 | Lt -> 2 | Ge -> 3 | Gt -> 4 | Le -> 5

let cond_of_code = function
  | 0 -> Eq
  | 1 -> Ne
  | 2 -> Lt
  | 3 -> Ge
  | 4 -> Gt
  | 5 -> Le
  | c -> decode_error "bad cond %d" c

(* Zigzag LEB128 varints: small magnitudes stay small, negatives work. *)
let put_varint buf v =
  let z = (v lsl 1) lxor (v asr 62) in
  let rec go z =
    if z land lnot 0x7F = 0 then Buffer.add_char buf (Char.chr z)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (z land 0x7F)));
      go (z lsr 7)
    end
  in
  go z

type reader = { bytes : Bytes.t; mutable pos : int }

let read_byte r =
  if r.pos >= Bytes.length r.bytes then decode_error "truncated image at %d" r.pos;
  let c = Char.code (Bytes.get r.bytes r.pos) in
  r.pos <- r.pos + 1;
  c

let read_varint r =
  let rec go shift acc =
    let b = read_byte r in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

(* Append one instruction's record to [buf]. *)
let encode buf i =
  let byte op = Buffer.add_char buf (Char.chr op) in
  let v x = put_varint buf x in
  match i with
  | Nop -> byte op_nop
  | Alu (op, d, a, b) ->
    byte (op_alu + alu_code op);
    v d;
    v a;
    v b
  | Alui (op, d, a, imm) ->
    byte (op_alui + alu_code op);
    v d;
    v a;
    v imm
  | Movi (d, imm) ->
    byte op_movi;
    v d;
    v imm
  | Load (d, b, off) ->
    byte op_load;
    v d;
    v b;
    v off
  | Store (s, b, off) ->
    byte op_store;
    v s;
    v b;
    v off
  | Branch (c, r, target) ->
    byte (op_branch + cond_code c);
    v r;
    v target
  | Jump target ->
    byte op_jump;
    v target
  | JumpInd r ->
    byte op_jumpind;
    v r
  | Call target ->
    byte op_call;
    v target
  | CallInd r ->
    byte op_callind;
    v r
  | Ret -> byte op_ret
  | FpCreate (d, target) ->
    byte op_fpcreate;
    v d;
    v target
  | VtLoad (d, vid, slot) ->
    byte op_vtload;
    v d;
    v vid;
    v slot
  | Rand (d, bound) ->
    byte op_rand;
    v d;
    v bound
  | TxMark -> byte op_txmark
  | Halt -> byte op_halt

(* Read one instruction record. *)
let decode r =
  let op = read_byte r in
  let v () = read_varint r in
  if op >= op_alu && op < op_alu + 8 then begin
    let d = v () in
    let a = v () in
    let b = v () in
    Alu (alu_of_code (op - op_alu), d, a, b)
  end
  else if op >= op_alui && op < op_alui + 8 then begin
    let d = v () in
    let a = v () in
    let imm = v () in
    Alui (alu_of_code (op - op_alui), d, a, imm)
  end
  else if op >= op_branch && op < op_branch + 6 then begin
    let r' = v () in
    let target = v () in
    Branch (cond_of_code (op - op_branch), r', target)
  end
  else
    match () with
    | () when op = op_nop -> Nop
    | () when op = op_movi ->
      let d = v () in
      let imm = v () in
      Movi (d, imm)
    | () when op = op_load ->
      let d = v () in
      let b = v () in
      let off = v () in
      Load (d, b, off)
    | () when op = op_store ->
      let s = v () in
      let b = v () in
      let off = v () in
      Store (s, b, off)
    | () when op = op_jump -> Jump (v ())
    | () when op = op_jumpind -> JumpInd (v ())
    | () when op = op_call -> Call (v ())
    | () when op = op_callind -> CallInd (v ())
    | () when op = op_ret -> Ret
    | () when op = op_fpcreate ->
      let d = v () in
      let t = v () in
      FpCreate (d, t)
    | () when op = op_vtload ->
      let d = v () in
      let vid = v () in
      let slot = v () in
      VtLoad (d, vid, slot)
    | () when op = op_rand ->
      let d = v () in
      let b = v () in
      Rand (d, b)
    | () when op = op_txmark -> TxMark
    | () when op = op_halt -> Halt
    | () -> decode_error "unknown opcode 0x%02x at %d" op (r.pos - 1)

let reader_of_bytes bytes = { bytes; pos = 0 }
let at_end r = r.pos >= Bytes.length r.bytes
