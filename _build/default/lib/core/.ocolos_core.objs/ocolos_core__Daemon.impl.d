lib/core/daemon.ml: Counters Float Fmt Ocolos Ocolos_proc Ocolos_uarch Proc
