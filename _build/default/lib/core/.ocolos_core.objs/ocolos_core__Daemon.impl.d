lib/core/daemon.ml: Counters Float Fmt Ocolos Ocolos_bolt Ocolos_proc Ocolos_uarch Proc Txn
