lib/core/cost.mli:
