lib/core/ocolos.mli: Cost Hashtbl Ocolos_binary Ocolos_bolt Ocolos_proc Ocolos_profiler Ocolos_util
