lib/core/ocolos.ml: Addr_space Array Binary Bolt Cost Fmt Hashtbl Instr List Ocolos_binary Ocolos_bolt Ocolos_isa Ocolos_proc Ocolos_profiler Ocolos_util Option Perf Perf2bolt Proc
