lib/core/cost.ml:
