lib/core/bam.mli:
