lib/core/txn.ml: Addr_space Array Fmt Ocolos Ocolos_bolt Ocolos_proc Ocolos_util Proc Thread
