lib/core/daemon.mli: Ocolos Ocolos_proc
