lib/core/bam.ml: Array Float List
