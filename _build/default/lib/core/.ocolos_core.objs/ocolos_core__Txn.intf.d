lib/core/txn.mli: Format Ocolos Ocolos_bolt
