(** Time model for OCOLOS's fixed costs (paper Table II).

    The simulator has no meaningful wall clock, so each pipeline stage's
    duration is a calibrated linear function of the work it performs:
    perf2bolt of LBR records converted, llvm-bolt of (re)constructed
    instructions, and the stop-the-world phase of patched sites plus
    injected bytes. *)

type t = {
  perf2bolt_sec_per_record : float;
  bolt_sec_per_instr : float;
  pause_sec_per_site : float;
  pause_sec_per_byte : float;
  pause_floor_sec : float;
  background_contention : float;
      (** fraction of target-thread cycles lost per second of background
          perf2bolt/BOLT work (Fig. 7 region 3) *)
}

val default : t
val perf2bolt_seconds : t -> records:int -> float
val bolt_seconds : t -> work_instrs:int -> float
val pause_seconds : t -> sites:int -> bytes:int -> float
