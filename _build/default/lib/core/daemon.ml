(* Continuous-optimization controller.

   Decides *when* to (re-)optimize a managed process, combining the paper's
   pieces: the DMon-style stage-1 TopDown gate (only front-end-bound
   processes are worth optimizing, Section V), the amortization rule (run
   at least long enough to win back what replacement cost, Section VI-C3),
   and drift detection for continuous mode (Section IV-C): when throughput
   degrades relative to the post-optimization steady state — e.g. the input
   mix shifted and the layout went stale — it re-profiles and replaces
   C_i with C_{i+1}.

   The controller is driven by periodic ticks from whoever owns the
   process's execution loop; it keeps no thread of its own. *)

open Ocolos_proc
open Ocolos_uarch

type config = {
  frontend_threshold : float; (* stage-1 gate on TopDown front-end fraction *)
  regression_tolerance : float; (* re-optimize when tps < (1 - tol) * best *)
  min_interval_s : float; (* amortization guard between replacements *)
  profile_s : float; (* LBR profiling duration per optimization *)
  warmup_s : float; (* ignore ticks before this *)
}

let default_config =
  { frontend_threshold = 0.15;
    regression_tolerance = 0.12;
    min_interval_s = 10.0;
    profile_s = 2.0;
    warmup_s = 1.0 }

type phase = Monitoring | Profiling of float (* profiling since *)

type t = {
  oc : Ocolos.t;
  proc : Proc.t;
  config : config;
  mutable phase : phase;
  mutable last_counters : Counters.t;
  mutable last_tick_s : float;
  mutable best_tps : float; (* best throughput since the last replacement *)
  mutable last_replacement_s : float;
  mutable replacements : int;
}

let create ?(config = default_config) (oc : Ocolos.t) (proc : Proc.t) =
  { oc;
    proc;
    config;
    phase = Monitoring;
    last_counters = Proc.total_counters proc;
    last_tick_s = 0.0;
    best_tps = 0.0;
    last_replacement_s = neg_infinity;
    replacements = 0 }

type action =
  | Idle (* nothing to do *)
  | Started_profiling of string (* reason *)
  | Replaced of Ocolos.replacement_stats

let action_to_string = function
  | Idle -> "idle"
  | Started_profiling reason -> "profiling: " ^ reason
  | Replaced s -> Fmt.str "replaced (C%d)" s.Ocolos.version

(* One controller tick at simulated time [now_s]. The caller advances the
   process between ticks. *)
let tick t ~now_s =
  let counters = Proc.total_counters t.proc in
  let interval = Counters.diff counters t.last_counters in
  let dt = now_s -. t.last_tick_s in
  t.last_counters <- counters;
  t.last_tick_s <- now_s;
  if dt <= 0.0 || now_s < t.config.warmup_s then Idle
  else begin
    let tps = float_of_int interval.Counters.transactions /. dt in
    let td = Counters.topdown interval in
    match t.phase with
    | Profiling since ->
      if now_s -. since >= t.config.profile_s then begin
        let profile, _ = Ocolos.stop_profiling t.oc in
        let result, _ = Ocolos.run_bolt t.oc profile in
        let stats = Ocolos.replace_code t.oc result in
        t.phase <- Monitoring;
        t.best_tps <- 0.0;
        t.last_replacement_s <- now_s;
        t.replacements <- t.replacements + 1;
        Replaced stats
      end
      else Idle
    | Monitoring ->
      t.best_tps <- Float.max t.best_tps tps;
      let amortized = now_s -. t.last_replacement_s >= t.config.min_interval_s in
      let reason =
        if t.replacements = 0 then
          if td.Counters.frontend >= t.config.frontend_threshold then
            Some
              (Fmt.str "front-end bound (%.0f%% >= %.0f%%)" (100.0 *. td.Counters.frontend)
                 (100.0 *. t.config.frontend_threshold))
          else None
        else if
          amortized
          && tps < (1.0 -. t.config.regression_tolerance) *. t.best_tps
        then
          Some
            (Fmt.str "throughput regressed to %.0f (best since C%d: %.0f) — stale layout"
               tps (Ocolos.version t.oc) t.best_tps)
        else None
      in
      (match reason with
      | Some why ->
        Ocolos.start_profiling t.oc;
        t.phase <- Profiling now_s;
        Started_profiling why
      | None -> Idle)
  end

let replacements t = t.replacements
let phase t = t.phase
