(** BAM: Batch Accelerator Mode (paper Section V-A).

    Intercepts exec calls of a target binary in a batch workload: the first
    K executions are profiled, BOLT then runs once in the background, and
    every later exec transparently launches the BOLTed binary — no
    stop-the-world phase, no build-system changes. *)

type config = {
  jobs : int;  (** make -j parallelism *)
  profiles_wanted : int;  (** executions to profile before running BOLT *)
  perf_slowdown : float;  (** run-time factor for profiled executions *)
}

val default_config : config

type mode = Original | Profiled | Optimized

(** The interception state machine (the LD_PRELOAD library's logic). *)
type t

val create : ?config:config -> bolt_seconds:float -> unit -> t

(** Decide how an exec of the target binary at time [now] is launched. *)
val on_exec : t -> now:float -> mode

(** Exit notification; the K-th completed profile starts background BOLT. *)
val on_exit : t -> now:float -> mode -> unit

type outcome = {
  total_seconds : float;
  profiled_runs : int;
  original_runs : int;
  optimized_runs : int;
  bolt_ready_at : float option;
}

(** List-schedule [n_files] compile jobs over [config.jobs] slots with BAM
    intercepting each exec; [t_orig]/[t_opt] give per-file durations. *)
val simulate_build :
  ?config:config ->
  n_files:int ->
  t_orig:(int -> float) ->
  t_opt:(int -> float) ->
  bolt_seconds:float ->
  unit ->
  outcome
