(* BAM: Batch Accelerator Mode (paper Section V-A).

   For workloads made of many short-running processes (a compiler driven by
   a parallel build), per-process code replacement cannot amortize. BAM
   instead intercepts exec calls of the target binary (the LD_PRELOAD
   analog): the first K executions run under perf profiling, then BOLT runs
   once in a background process, and every subsequent exec transparently
   launches the BOLTed binary. There is no stop-the-world phase and no
   change to the build system.

   The state machine ({!create}/{!on_exec}/{!on_exit}) mirrors the shared
   library's logic; {!simulate_build} is a list-scheduling model of a
   `make -j` style build using per-file durations measured on the
   simulator. *)

type config = {
  jobs : int; (* make -j parallelism *)
  profiles_wanted : int; (* executions to profile before running BOLT *)
  perf_slowdown : float; (* run-time factor for profiled executions *)
}

let default_config = { jobs = 8; profiles_wanted = 5; perf_slowdown = 1.06 }

type mode = Original | Profiled | Optimized

type t = {
  cfg : config;
  bolt_seconds : float; (* perf2bolt + llvm-bolt background time *)
  mutable profiles_started : int;
  mutable profiles_done : int;
  mutable bolt_ready_at : float option;
}

let create ?(config = default_config) ~bolt_seconds () =
  { cfg = config; bolt_seconds; profiles_started = 0; profiles_done = 0; bolt_ready_at = None }

(* Intercepted exec of the target binary at time [now]: decide how to launch
   it. *)
let on_exec t ~now =
  match t.bolt_ready_at with
  | Some ready when now >= ready -> Optimized
  | Some _ | None ->
    if t.profiles_started < t.cfg.profiles_wanted then begin
      t.profiles_started <- t.profiles_started + 1;
      Profiled
    end
    else Original

(* Process exit notification: the K-th completed profile kicks off BOLT in
   the background. *)
let on_exit t ~now mode =
  match mode with
  | Profiled ->
    t.profiles_done <- t.profiles_done + 1;
    if t.profiles_done = t.cfg.profiles_wanted && t.bolt_ready_at = None then
      t.bolt_ready_at <- Some (now +. t.bolt_seconds)
  | Original | Optimized -> ()

type outcome = {
  total_seconds : float;
  profiled_runs : int;
  original_runs : int;
  optimized_runs : int;
  bolt_ready_at : float option;
}

(* List-schedule [n_files] compile jobs over [cfg.jobs] slots, with BAM
   intercepting each exec. [t_orig]/[t_opt] give per-file durations in
   seconds. Jobs are assigned in order to the earliest-free slot, so start
   times are non-decreasing and the BAM state seen at each exec is
   consistent. *)
let simulate_build ?(config = default_config) ~n_files ~t_orig ~t_opt ~bolt_seconds () =
  let bam = create ~config ~bolt_seconds () in
  let slots = Array.make config.jobs 0.0 in
  let profiled = ref 0 and original = ref 0 and optimized = ref 0 in
  (* Pending exits, processed in time order so profile completions are
     observed by later execs. *)
  let exits : (float * mode) list ref = ref [] in
  let process_exits_upto now =
    let due, rest = List.partition (fun (when_, _) -> when_ <= now) !exits in
    exits := rest;
    List.iter (fun (when_, mode) -> on_exit bam ~now:when_ mode)
      (List.sort compare due)
  in
  for file = 0 to n_files - 1 do
    (* Earliest-free slot. *)
    let slot = ref 0 in
    for s = 1 to config.jobs - 1 do
      if slots.(s) < slots.(!slot) then slot := s
    done;
    let start = slots.(!slot) in
    process_exits_upto start;
    let mode = on_exec bam ~now:start in
    let duration =
      match mode with
      | Original -> t_orig file
      | Profiled ->
        incr profiled;
        t_orig file *. config.perf_slowdown
      | Optimized ->
        incr optimized;
        t_opt file
    in
    (match mode with Original -> incr original | Profiled | Optimized -> ());
    let finish = start +. duration in
    slots.(!slot) <- finish;
    exits := (finish, mode) :: !exits
  done;
  process_exits_upto infinity;
  { total_seconds = Array.fold_left Float.max 0.0 slots;
    profiled_runs = !profiled;
    original_runs = !original;
    optimized_runs = !optimized;
    bolt_ready_at = bam.bolt_ready_at }
