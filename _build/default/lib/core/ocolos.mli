(** OCOLOS: online code layout optimization of a running process (the
    paper's primary contribution).

    Pipeline (paper Fig. 4a): profile the target with LBR sampling, run BOLT
    in the background, then pause the target, inject the optimized code C1
    at fresh addresses while preserving C0 (design principle #1), update
    v-table entries and direct calls inside stack-live functions so C1 runs
    in the common case (principle #2), and resume — fixed costs only
    (principle #3). Function pointers are pinned to C0 by the
    wrapFuncPtrCreation hook, which also makes continuous optimization's
    garbage collection of old versions safe. Continuous mode (C_i ->
    C_{i+1}), which the paper could not evaluate due to an LLVM-BOLT
    limitation, is fully implemented here: stack-live C_i functions are
    copied verbatim with address rebasing, return addresses and PCs are
    redirected, and the unreachable C_i region is unmapped. *)

type config = {
  bolt : Ocolos_bolt.Bolt.config;
  perf : Ocolos_profiler.Perf.config;
  cost : Cost.t;
  patch_all_direct_calls : bool;
      (** ablation: the paper found patching non-stack-live calls does not
          help and only slows replacement *)
  verify_gc : bool;  (** scan for dangling pointers after each GC *)
  fault : Ocolos_util.Fault.t option;
      (** fault-injection registry consulted at every {!injection_points}
          cut inside [replace_code]; [None] (the default) compiles the cuts
          down to counter-free no-ops *)
}

val default_config : config

type replacement_stats = {
  version : int;
  vtable_entries_patched : int;
  call_sites_patched : int;
  stack_live_funcs : int;
  copied_funcs : int;
  funcs_optimized : int;
  code_bytes_injected : int;
  gc_bytes_freed : int;
  pause_seconds : float;  (** modeled stop-the-world duration *)
}

type t

(** Attach to a running process (the ptrace analog). Performs the offline
    call-site analysis and installs the function-pointer creation hook. *)
val attach : ?config:config -> Ocolos_proc.Proc.t -> t

val version : t -> int

(** The live binary view (C0 plus the current optimized version): symbol
    resolution for profiling and the input to the next BOLT round. *)
val current_binary : t -> Ocolos_binary.Binary.t

(** Begin LBR sampling of the target. The caller keeps driving the process;
    sampling happens as it runs. *)
val start_profiling : t -> unit

(** Stop sampling; returns the aggregated profile and the modeled perf2bolt
    conversion time in seconds. *)
val stop_profiling : t -> Ocolos_profiler.Profile.t * float

(** Run BOLT on the current code version. Returns the result and the
    modeled optimization time in seconds. *)
val run_bolt : t -> Ocolos_profiler.Profile.t -> Ocolos_bolt.Bolt.result * float

(** The stop-the-world phase: pause, inject, patch pointers, GC the
    previous version (continuous mode), resume. *)
val replace_code : t -> Ocolos_bolt.Bolt.result -> replacement_stats

(** Raised by the post-GC safety scan when a reachable code pointer
    references freed code. *)
exception Dangling_pointer of string

val verify_no_dangling : t -> freed:(int * int) -> unit

(** Stack-live function set (by return addresses and PCs), as fids. *)
val stack_live_fids : t -> (int, unit) Hashtbl.t

val proc : t -> Ocolos_proc.Proc.t
val config : t -> config

(** Every named fault-injection point inside [replace_code], in the order
    the stop-the-world phase reaches them. Points inside mutation loops are
    hit once per iteration, so an [Nth] schedule lands mid-mutation; the
    [gc_*] points, [thread_patch] and [verify] are reachable only in
    continuous (C_i -> C_{i+1}) rounds. *)
val injection_points : string list

(** Controller-state snapshot: exactly the fields [replace_code] mutates.
    Used by {!Txn} to roll the controller back to C_i together with the
    address-space undo journal. One snapshot can back multiple restores. *)
type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
