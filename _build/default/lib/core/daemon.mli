(** Continuous-optimization controller: decides {e when} to (re-)optimize a
    managed process. Combines the DMon-style stage-1 TopDown gate (paper
    Section V), the amortization rule of Section VI-C3, and drift detection
    for continuous mode (Section IV-C): a throughput regression relative to
    the post-optimization steady state — a stale layout after an input
    shift — triggers re-profiling and replacement of C_i by C_{i+1}.

    Driven by periodic {!tick}s from whoever owns the process's execution
    loop; the controller keeps no thread of its own. *)

type config = {
  frontend_threshold : float;
  regression_tolerance : float;
  min_interval_s : float;
  profile_s : float;
  warmup_s : float;
}

val default_config : config

type phase = Monitoring | Profiling of float

type t

val create : ?config:config -> Ocolos.t -> Ocolos_proc.Proc.t -> t

type action = Idle | Started_profiling of string | Replaced of Ocolos.replacement_stats

val action_to_string : action -> string

(** One controller tick at simulated time [now_s]; the caller advances the
    process between ticks. *)
val tick : t -> now_s:float -> action

val replacements : t -> int
val phase : t -> phase
