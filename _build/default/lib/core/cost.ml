(* Time model for OCOLOS's fixed costs (paper Table II).

   The simulator has no meaningful wall clock, so each pipeline stage's
   duration is a calibrated linear function of the work it performs:
   perf2bolt is dominated by LBR record conversion, llvm-bolt by the volume
   of (re)constructed instructions, and the stop-the-world phase by patched
   sites and injected bytes. Constants are calibrated so that paper-scale
   workloads produce Table-II-magnitude times. *)

type t = {
  perf2bolt_sec_per_record : float;
  bolt_sec_per_instr : float;
  pause_sec_per_site : float; (* per patched v-table entry or call site *)
  pause_sec_per_byte : float; (* per injected code byte *)
  pause_floor_sec : float; (* fixed ptrace attach/stop cost *)
  background_contention : float;
      (* fraction of target-thread cycles lost per second of background
         perf2bolt/BOLT work (region 3 of Fig. 7) *)
}

let default =
  { perf2bolt_sec_per_record = 5.0e-5;
    bolt_sec_per_instr = 4.0e-5;
    pause_sec_per_site = 2.0e-4;
    pause_sec_per_byte = 2.0e-6;
    pause_floor_sec = 0.02;
    background_contention = 0.13 }

let perf2bolt_seconds t ~records = float_of_int records *. t.perf2bolt_sec_per_record

let bolt_seconds t ~work_instrs = float_of_int work_instrs *. t.bolt_sec_per_instr

let pause_seconds t ~sites ~bytes =
  t.pause_floor_sec
  +. (float_of_int sites *. t.pause_sec_per_site)
  +. (float_of_int bytes *. t.pause_sec_per_byte)
