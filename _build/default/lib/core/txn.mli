(** Transactional code replacement: {!Ocolos.replace_code} wrapped in an
    undo journal so that a fault firing anywhere mid-replacement rolls the
    address space, thread stacks and controller state back to the previous
    code version C_i — the managed process degrades to running unoptimized
    code instead of crashing on a half-applied patch.

    The rollback invariant (checked by the property suite): after any
    single injected fault, the process resumes on a consistent code version
    with zero dangling pointers and an execution trace identical to a run
    that never attempted the replacement. *)

type rollback = {
  rb_point : string;  (** injection point that fired *)
  rb_hit : int;  (** hit count at which it fired *)
  rb_undone : int;  (** address-space mutations undone *)
}

type outcome = Committed of Ocolos.replacement_stats | Rolled_back of rollback

(** = {!Ocolos.injection_points}. *)
val injection_points : string list

(** Run the stop-the-world phase transactionally. Commits iff the
    underlying [replace_code] returns; on {!Ocolos_util.Fault.Injected} the
    transaction rolls back and reports the firing point. Any other
    exception (e.g. {!Ocolos.Dangling_pointer} from the GC verifier) also
    triggers a full rollback and is then re-raised. *)
val replace_code : Ocolos.t -> Ocolos_bolt.Bolt.result -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
