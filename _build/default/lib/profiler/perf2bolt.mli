(** perf2bolt analog: convert raw LBR samples into an aggregated profile.

    Classifies each LBR entry against the binary (call edge vs. branch edge)
    and derives straight-line fallthrough ranges from consecutive entries. *)

val convert : binary:Ocolos_binary.Binary.t -> Perf.sample list -> Profile.t
