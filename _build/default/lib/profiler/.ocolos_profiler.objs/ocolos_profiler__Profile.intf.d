lib/profiler/profile.mli: Format Hashtbl
