lib/profiler/perf2bolt.mli: Ocolos_binary Perf Profile
