lib/profiler/perf_report.ml: Array Fmt Hashtbl List Ocolos_binary Ocolos_proc Ocolos_uarch Option
