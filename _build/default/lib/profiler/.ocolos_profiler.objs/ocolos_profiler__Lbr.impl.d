lib/profiler/lbr.ml: Array
