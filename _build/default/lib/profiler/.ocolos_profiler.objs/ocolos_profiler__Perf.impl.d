lib/profiler/perf.ml: Array Lbr List Ocolos_proc Ocolos_uarch
