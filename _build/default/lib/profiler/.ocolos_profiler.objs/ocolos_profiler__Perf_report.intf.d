lib/profiler/perf_report.mli: Format Ocolos_binary Ocolos_isa Ocolos_proc
