lib/profiler/perf2bolt.ml: Array Binary Hashtbl Lbr List Ocolos_binary Ocolos_isa Perf Profile
