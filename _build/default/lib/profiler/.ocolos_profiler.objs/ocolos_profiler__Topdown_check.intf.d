lib/profiler/topdown_check.mli: Ocolos_uarch
