lib/profiler/perf.mli: Lbr Ocolos_proc
