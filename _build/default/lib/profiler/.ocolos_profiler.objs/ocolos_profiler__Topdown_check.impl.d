lib/profiler/topdown_check.ml: Counters Ocolos_uarch
