lib/profiler/lbr.mli:
