lib/profiler/profile.ml: Fmt Hashtbl List
