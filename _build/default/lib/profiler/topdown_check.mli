(** Stage-1 profiling (DMon-style TopDown bottleneck analysis): decide from
    hardware counters whether a process is front-end-bound enough to merit
    OCOLOS's optimizations (paper Section V and Fig. 9). *)

type verdict = {
  topdown : Ocolos_uarch.Counters.topdown;
  frontend_bound : bool;
  interval : Ocolos_uarch.Counters.t;
}

val default_threshold : float

val analyze :
  ?threshold:float ->
  before:Ocolos_uarch.Counters.t ->
  after:Ocolos_uarch.Counters.t ->
  unit ->
  verdict

(** (front-end latency fraction, retiring fraction) — Fig. 9 inputs. *)
val features : verdict -> float * float
