(** Aggregated control-flow profile: the output of {!Perf2bolt} and the
    input to BOLT. Taken-branch edge counts, straight-line fallthrough
    ranges, and the weighted call graph; addresses refer to the profiled
    binary. *)

type t = {
  branches : (int * int, int) Hashtbl.t;  (** (site, target) -> taken count *)
  ranges : (int * int, int) Hashtbl.t;  (** (start, end) straight-line run *)
  calls : (int * int, int) Hashtbl.t;  (** (caller fid, callee fid) -> count *)
  func_records : (int, int) Hashtbl.t;  (** fid -> LBR records touching it *)
  mutable total_records : int;
}

val create : unit -> t
val add_branch : t -> from_addr:int -> to_addr:int -> int -> unit
val add_range : t -> start_addr:int -> end_addr:int -> int -> unit
val add_call : t -> caller:int -> callee:int -> int -> unit
val add_func_record : t -> int -> int -> unit

val branch_count : t -> int * int -> int
val call_count : t -> int * int -> int
val func_records : t -> int -> int

(** Sum counts across profiles: the paper's "all inputs" aggregate. *)
val merge : t list -> t

val is_empty : t -> bool
val pp_summary : Format.formatter -> t -> unit
