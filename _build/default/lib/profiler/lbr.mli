(** Last Branch Record ring buffer (Intel LBR analog, 32 entries): the most
    recent taken control transfers as (source PC, target) pairs. *)

type entry = { from_addr : int; to_addr : int }
type t

val capacity : int
val create : unit -> t
val record : t -> from_addr:int -> to_addr:int -> unit

(** Current contents, oldest first. *)
val snapshot : t -> entry array

val clear : t -> unit
