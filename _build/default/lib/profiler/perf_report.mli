(** perf report / perf annotate analog: sampled L1i-miss addresses
    attributed to functions and instructions (the paper's MYSQLparse
    analysis, Section VI-C). *)

type t
type session

(** Attach miss sampling (every [period]-th L1i miss) to all cores. *)
val start : ?period:int -> Ocolos_proc.Proc.t -> session

(** Detach and return the collected report. *)
val stop : session -> t

type func_row = { fr_fid : int; fr_name : string; fr_samples : int; fr_share : float }

(** Functions ranked by share of sampled L1i misses (perf report). *)
val by_function : t -> Ocolos_binary.Binary.t -> func_row list

(** One function's instructions with per-address sample counts
    (perf annotate). *)
val annotate :
  t -> Ocolos_binary.Binary.t -> int -> (int * Ocolos_isa.Instr.t * int) list

val samples_of_func : t -> Ocolos_binary.Binary.t -> int -> int
val pp_top : ?limit:int -> Format.formatter -> t * Ocolos_binary.Binary.t -> unit
