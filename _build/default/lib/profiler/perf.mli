(** perf-record analog: LBR sampling of a running process.

    Attaching installs a taken-branch hook feeding per-thread LBR rings;
    every [sample_period] core cycles the ring is snapshotted (a PMI),
    charging a small overhead to the sampled thread — the throughput dip of
    the paper's Fig. 7 region 2. *)

type config = {
  sample_period : int;  (** core cycles between PMIs, per thread *)
  pmi_overhead : float;  (** cycles charged to the thread per sample *)
}

val default_config : config

type sample = { s_tid : int; entries : Lbr.entry array }
type session

(** Attach to a (running or about-to-run) process. The caller keeps driving
    the process; branch events flow into the session until {!stop}. *)
val start : ?cfg:config -> Ocolos_proc.Proc.t -> session

(** Detach, restoring any previous hook; returns samples oldest first. *)
val stop : session -> sample list

val sample_count : session -> int

(** Total LBR records across samples (raw profile volume; drives the
    perf2bolt cost model). *)
val record_count : sample list -> int
