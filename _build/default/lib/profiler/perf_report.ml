(* perf report / perf annotate analog.

   Samples L1i-miss addresses across a process's cores and attributes them
   to functions (report) and to individual instructions (annotate). The
   paper's MySQL case study (Section VI-C) uses exactly this to show that
   MYSQLparse dominates L1i misses under average-case BOLT and Clang PGO but
   disappears entirely under OCOLOS and oracle BOLT. *)

type t = {
  samples : (int, int) Hashtbl.t; (* miss address -> sample count *)
  mutable total : int;
  period : int; (* every Nth miss is sampled *)
}

type session = { report : t; proc : Ocolos_proc.Proc.t; mutable seen : int }

(* Attach miss-sampling to every core of [proc]. *)
let start ?(period = 7) proc =
  let report = { samples = Hashtbl.create 1024; total = 0; period } in
  let session = { report; proc; seen = 0 } in
  Array.iter
    (fun (thread : Ocolos_proc.Thread.t) ->
      Ocolos_uarch.Core.set_l1i_miss_observer thread.Ocolos_proc.Thread.core
        (Some
           (fun addr ->
             session.seen <- session.seen + 1;
             if session.seen mod period = 0 then begin
               (match Hashtbl.find_opt report.samples addr with
               | Some c -> Hashtbl.replace report.samples addr (c + 1)
               | None -> Hashtbl.add report.samples addr 1);
               report.total <- report.total + 1
             end)))
    proc.Ocolos_proc.Proc.threads;
  session

let stop session =
  Array.iter
    (fun (thread : Ocolos_proc.Thread.t) ->
      Ocolos_uarch.Core.set_l1i_miss_observer thread.Ocolos_proc.Thread.core None)
    session.proc.Ocolos_proc.Proc.threads;
  session.report

type func_row = { fr_fid : int; fr_name : string; fr_samples : int; fr_share : float }

(* perf report: functions ranked by their share of sampled L1i misses. *)
let by_function t (binary : Ocolos_binary.Binary.t) =
  let index = Ocolos_binary.Binary.build_addr_index binary in
  let per_fid = Hashtbl.create 64 in
  Hashtbl.iter
    (fun addr count ->
      match Ocolos_binary.Binary.index_lookup index addr with
      | Some fid ->
        Hashtbl.replace per_fid fid
          (count + Option.value ~default:0 (Hashtbl.find_opt per_fid fid))
      | None -> ())
    t.samples;
  Hashtbl.fold
    (fun fid samples acc ->
      { fr_fid = fid;
        fr_name = binary.Ocolos_binary.Binary.symbols.(fid).Ocolos_binary.Binary.fs_name;
        fr_samples = samples;
        fr_share = float_of_int samples /. float_of_int (max 1 t.total) }
      :: acc)
    per_fid []
  |> List.sort (fun a b -> compare b.fr_samples a.fr_samples)

(* perf annotate: one function's instructions with per-address sample
   counts. *)
let annotate t (binary : Ocolos_binary.Binary.t) fid =
  Ocolos_binary.Binary.func_instrs binary fid
  |> List.map (fun (addr, instr) ->
         (addr, instr, Option.value ~default:0 (Hashtbl.find_opt t.samples addr)))

let samples_of_func t (binary : Ocolos_binary.Binary.t) fid =
  List.fold_left (fun acc (_, _, c) -> acc + c) 0 (annotate t binary fid)

let pp_top ?(limit = 10) fmt (t, binary) =
  let rows = by_function t binary in
  Fmt.pf fmt "%d L1i-miss samples; top functions:@." t.total;
  List.iteri
    (fun i r ->
      if i < limit then
        Fmt.pf fmt "  %5.1f%%  %8d  %s@." (100.0 *. r.fr_share) r.fr_samples r.fr_name)
    rows
