(* Stage-1 profiling (DMon-style TopDown bottleneck analysis, paper
   Section V): decide from hardware counters whether a process is
   front-end-bound enough to merit OCOLOS's optimizations. *)

open Ocolos_uarch

type verdict = {
  topdown : Counters.topdown;
  frontend_bound : bool;
  interval : Counters.t;
}

let default_threshold = 0.15

(* Analyze the counter delta over a measurement interval. *)
let analyze ?(threshold = default_threshold) ~before ~after () =
  let interval = Counters.diff after before in
  let topdown = Counters.topdown interval in
  { topdown; frontend_bound = topdown.Counters.frontend >= threshold; interval }

(* Fig. 9's classifier inputs: front-end latency and retiring percentages. *)
let features verdict =
  (verdict.topdown.Counters.frontend, verdict.topdown.Counters.retiring)
