(* Aggregated control-flow profile, the output of perf2bolt and the input to
   BOLT: taken-branch edge counts, straight-line fallthrough ranges, and the
   weighted call graph. All addresses refer to the profiled binary. *)

type t = {
  branches : (int * int, int) Hashtbl.t; (* (site, target) -> taken count *)
  ranges : (int * int, int) Hashtbl.t; (* (start, end) straight-line run -> count *)
  calls : (int * int, int) Hashtbl.t; (* (caller fid, callee fid) -> count *)
  func_records : (int, int) Hashtbl.t; (* fid -> LBR records touching it *)
  mutable total_records : int;
}

let create () =
  { branches = Hashtbl.create 1024;
    ranges = Hashtbl.create 1024;
    calls = Hashtbl.create 256;
    func_records = Hashtbl.create 256;
    total_records = 0 }

let bump tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some v -> Hashtbl.replace tbl key (v + n)
  | None -> Hashtbl.add tbl key n

let add_branch t ~from_addr ~to_addr n =
  bump t.branches (from_addr, to_addr) n;
  t.total_records <- t.total_records + n

let add_range t ~start_addr ~end_addr n = bump t.ranges (start_addr, end_addr) n
let add_call t ~caller ~callee n = bump t.calls (caller, callee) n
let add_func_record t fid n = bump t.func_records fid n

let branch_count t key = match Hashtbl.find_opt t.branches key with Some v -> v | None -> 0
let call_count t key = match Hashtbl.find_opt t.calls key with Some v -> v | None -> 0
let func_records t fid = match Hashtbl.find_opt t.func_records fid with Some v -> v | None -> 0

(* Merge profiles by summing counts: the paper's "all inputs" aggregate
   (Fig. 3 / Fig. 5 BOLT average-case configuration). *)
let merge profiles =
  let out = create () in
  List.iter
    (fun p ->
      Hashtbl.iter (fun k v -> bump out.branches k v) p.branches;
      Hashtbl.iter (fun k v -> bump out.ranges k v) p.ranges;
      Hashtbl.iter (fun k v -> bump out.calls k v) p.calls;
      Hashtbl.iter (fun k v -> bump out.func_records k v) p.func_records;
      out.total_records <- out.total_records + p.total_records)
    profiles;
  out

(* Total taken-branch mass attributed within one function: used for hot
   function selection. *)
let is_empty t = Hashtbl.length t.branches = 0

let pp_summary fmt t =
  Fmt.pf fmt "profile: %d branch edges, %d ranges, %d call edges, %d records"
    (Hashtbl.length t.branches) (Hashtbl.length t.ranges) (Hashtbl.length t.calls)
    t.total_records
