(* Executable images.

   A binary is a set of sections holding machine code (address -> instruction,
   with byte-accurate sizes), a symbol table mapping functions to their code
   ranges, v-table images to be materialized in data memory at load time, and
   a global data region. BOLTed binaries carry both the original code
   (renamed bolt.org.text, left at its original addresses) and the optimized
   code in a new .text section at higher addresses, exactly as described in
   Section II-D of the paper. *)

open Ocolos_isa

type range = { r_start : int; r_size : int }

let range_contains r addr = addr >= r.r_start && addr < r.r_start + r.r_size

type func_sym = {
  fs_fid : int;
  fs_name : string;
  fs_entry : int;
  fs_ranges : range list; (* hot range first; cold split range second if any *)
}

let sym_size s = List.fold_left (fun acc r -> acc + r.r_size) 0 s.fs_ranges

type section = { sec_name : string; sec_base : int; sec_size : int }

type vtable = {
  vt_id : int;
  vt_addr : int; (* base address in data memory *)
  vt_entries : int array; (* code addresses of the methods *)
}

type t = {
  name : string;
  sections : section list;
  code : (int, Instr.t) Hashtbl.t;
  code_order : int array; (* instruction addresses, sorted *)
  symbols : func_sym array; (* indexed by fid *)
  vtables : vtable array; (* indexed by vid *)
  globals_base : int;
  globals_words : int;
  global_init : (int * int) list; (* absolute data address, value *)
  entry : int; (* code address of the program entry point *)
  debug : (int, int * int) Hashtbl.t; (* addr -> (fid, bid); ground truth *)
}

let find_instr b addr = Hashtbl.find_opt b.code addr

let instr_count b = Array.length b.code_order

let text_bytes b =
  Array.fold_left
    (fun acc addr -> acc + Instr.size (Hashtbl.find b.code addr))
    0 b.code_order

(* Map a code address to the function whose range contains it. *)
let func_of_addr b addr =
  let n = Array.length b.symbols in
  let rec scan i =
    if i >= n then None
    else
      let s = b.symbols.(i) in
      if List.exists (fun r -> range_contains r addr) s.fs_ranges then Some s else scan (i + 1)
  in
  scan 0

(* Sorted (range_start, fid) index for fast address->function resolution. *)
type addr_index = (int * int * int) array (* start, end_exclusive, fid *)

let build_addr_index b =
  let ranges =
    Array.to_list b.symbols
    |> List.concat_map (fun s ->
           List.map (fun r -> (r.r_start, r.r_start + r.r_size, s.fs_fid)) s.fs_ranges)
    |> Array.of_list
  in
  Array.sort (fun (a, _, _) (b, _, _) -> compare a b) ranges;
  ranges

let index_lookup (idx : addr_index) addr =
  let lo = ref 0 and hi = ref (Array.length idx - 1) and found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let s, e, fid = idx.(mid) in
    if addr < s then hi := mid - 1
    else if addr >= e then lo := mid + 1
    else begin
      found := Some fid;
      lo := !hi + 1
    end
  done;
  !found

let find_symbol_by_name b name =
  let n = Array.length b.symbols in
  let rec scan i =
    if i >= n then None
    else if b.symbols.(i).fs_name = name then Some b.symbols.(i)
    else scan (i + 1)
  in
  scan 0

let section_named b name = List.find_opt (fun s -> s.sec_name = name) b.sections

(* Direct call sites: (site address, callee entry address). OCOLOS parses
   these offline to shorten the stop-the-world phase (Section IV). *)
let direct_call_sites b =
  Array.fold_left
    (fun acc addr ->
      match Hashtbl.find b.code addr with
      | Instr.Call target -> (addr, target) :: acc
      | _ -> acc)
    [] b.code_order
  |> List.rev

(* Instructions of one function in address order, as (addr, instr) pairs. *)
let func_instrs b fid =
  let s = b.symbols.(fid) in
  List.concat_map
    (fun r ->
      let acc = ref [] in
      let addr = ref r.r_start in
      while !addr < r.r_start + r.r_size do
        match Hashtbl.find_opt b.code !addr with
        | Some i ->
          acc := (!addr, i) :: !acc;
          addr := !addr + Instr.size i
        | None -> addr := !addr + 1 (* alignment padding *)
      done;
      List.rev !acc)
    s.fs_ranges

let pp_summary fmt b =
  Fmt.pf fmt "binary %s: %d functions, %d vtables, %d instrs, %d text bytes, entry 0x%x"
    b.name (Array.length b.symbols) (Array.length b.vtables) (instr_count b) (text_bytes b)
    b.entry
