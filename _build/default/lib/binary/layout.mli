(** Code layout descriptors.

    A layout fixes the order of functions in the text section and, per
    function, the order of basic blocks, optionally splitting blocks into a
    hot part (placed with the function) and a cold part (exiled to a shared
    cold region after all hot code, as in BOLT's hot/cold splitting). *)

type func_layout = {
  fid : int;
  hot : int list;  (** block ids; must start with the entry block 0 *)
  cold : int list;  (** block ids placed in the shared cold region *)
}

(** Functions in text-section order. Functions absent from the list are not
    emitted (the BOLT path leaves cold functions at their original
    addresses). *)
type t = func_layout list

exception Invalid of string

(** Check that each listed function places every block exactly once and puts
    the entry block first. Raises {!Invalid} otherwise. *)
val validate : Ocolos_isa.Ir.program -> t -> unit

(** Source-order layout of every function (the "original binary" layout). *)
val default : Ocolos_isa.Ir.program -> t

val covered_fids : t -> int list

(** Random valid layout (random function/block order and hot/cold split);
    property tests use this to check layout never changes semantics. *)
val randomize : Ocolos_util.Rng.t -> Ocolos_isa.Ir.program -> t
