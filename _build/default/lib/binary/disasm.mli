(** objdump-style disassembly of binary images: functions in address order,
    per-instruction addresses, basic-block boundaries from debug info, and
    symbolized direct-transfer targets. *)

val symbolize : Binary.t -> Binary.addr_index -> int -> string
val pp_function : Format.formatter -> Binary.t -> int -> unit
val pp : Format.formatter -> Binary.t -> unit
val function_to_string : Binary.t -> int -> string
