(* Code layout descriptors.

   A layout fixes the order of functions in the text section and, per
   function, the order of basic blocks, optionally splitting blocks into a
   hot part (placed with the function) and a cold part (exiled to a shared
   cold region after all hot code, as BOLT's hot/cold splitting does). *)

open Ocolos_isa

type func_layout = {
  fid : int;
  hot : int list; (* block ids; must start with the entry block 0 *)
  cold : int list; (* block ids placed in the shared cold region *)
}

type t = func_layout list

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let validate (program : Ir.program) (layout : t) =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun fl ->
      if Hashtbl.mem seen fl.fid then invalid "function %d appears twice in layout" fl.fid;
      Hashtbl.add seen fl.fid ();
      if fl.fid < 0 || fl.fid >= Array.length program.Ir.funcs then
        invalid "layout function id %d out of range" fl.fid;
      let f = program.Ir.funcs.(fl.fid) in
      let nblocks = Array.length f.Ir.blocks in
      (match fl.hot with
      | 0 :: _ -> ()
      | _ -> invalid "function %s: layout must start with entry block" f.Ir.fname);
      let marks = Array.make nblocks 0 in
      List.iter
        (fun bid ->
          if bid < 0 || bid >= nblocks then invalid "function %s: block %d out of range" f.Ir.fname bid;
          marks.(bid) <- marks.(bid) + 1)
        (fl.hot @ fl.cold);
      Array.iteri
        (fun bid count ->
          if count <> 1 then
            invalid "function %s: block %d placed %d times" f.Ir.fname bid count)
        marks)
    layout

(* Source-order layout of every function: the "original binary" layout. *)
let default (program : Ir.program) : t =
  Array.to_list
    (Array.map
       (fun (f : Ir.func) ->
         { fid = f.Ir.fid; hot = List.init (Array.length f.Ir.blocks) (fun i -> i); cold = [] })
       program.Ir.funcs)

let covered_fids (layout : t) = List.map (fun fl -> fl.fid) layout

(* Random valid layout: random function order, random block order with entry
   first, random hot/cold split. Used by property tests to check that layout
   never changes semantics. *)
let randomize rng (program : Ir.program) : t =
  let fids = Array.init (Array.length program.Ir.funcs) (fun i -> i) in
  Ocolos_util.Rng.shuffle rng fids;
  Array.to_list fids
  |> List.map (fun fid ->
         let f = program.Ir.funcs.(fid) in
         let nblocks = Array.length f.Ir.blocks in
         let rest = Array.init (nblocks - 1) (fun i -> i + 1) in
         Ocolos_util.Rng.shuffle rng rest;
         let hot, cold =
           Array.to_list rest
           |> List.partition (fun _ -> Ocolos_util.Rng.bool rng 0.7)
         in
         { fid; hot = 0 :: hot; cold })
