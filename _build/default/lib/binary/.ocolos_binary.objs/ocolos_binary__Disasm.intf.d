lib/binary/disasm.mli: Binary Format
