lib/binary/disasm.ml: Array Binary Fmt Hashtbl Instr List Ocolos_isa
