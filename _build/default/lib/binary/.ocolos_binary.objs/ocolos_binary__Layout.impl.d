lib/binary/layout.ml: Array Fmt Hashtbl Ir List Ocolos_isa Ocolos_util
