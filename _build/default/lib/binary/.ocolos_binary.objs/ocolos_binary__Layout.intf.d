lib/binary/layout.mli: Ocolos_isa Ocolos_util
