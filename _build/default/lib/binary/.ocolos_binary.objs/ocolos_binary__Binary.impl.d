lib/binary/binary.ml: Array Fmt Hashtbl Instr List Ocolos_isa
