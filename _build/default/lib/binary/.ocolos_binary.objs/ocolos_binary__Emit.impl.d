lib/binary/emit.ml: Array Binary Fmt Hashtbl Instr Ir Layout List Ocolos_isa
