lib/binary/serialize.mli: Binary Bytes
