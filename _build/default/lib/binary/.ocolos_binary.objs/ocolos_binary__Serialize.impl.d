lib/binary/serialize.ml: Array Binary Buffer Bytes Char Encode Fmt Fun Hashtbl List Ocolos_isa String
