lib/binary/emit.mli: Binary Hashtbl Layout Ocolos_isa
