lib/binary/binary.mli: Format Hashtbl Ocolos_isa
