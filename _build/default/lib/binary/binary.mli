(** Executable images.

    A binary holds machine code (address -> instruction with byte-accurate
    sizes), a symbol table mapping functions to code ranges, v-table images
    materialized into data memory at load time, and a global data region.
    BOLTed binaries carry both the original code (the [bolt.org.text]
    section, left at its original addresses) and optimized code in a new
    [.text] section at higher addresses (paper Section II-D). *)

type range = { r_start : int; r_size : int }

val range_contains : range -> int -> bool

type func_sym = {
  fs_fid : int;
  fs_name : string;
  fs_entry : int;
  fs_ranges : range list;  (** hot range first; cold-split range second *)
}

val sym_size : func_sym -> int

type section = { sec_name : string; sec_base : int; sec_size : int }

type vtable = {
  vt_id : int;
  vt_addr : int;  (** base address in data memory *)
  vt_entries : int array;  (** code addresses of the methods *)
}

type t = {
  name : string;
  sections : section list;
  code : (int, Ocolos_isa.Instr.t) Hashtbl.t;
  code_order : int array;  (** instruction addresses, sorted ascending *)
  symbols : func_sym array;  (** indexed by fid *)
  vtables : vtable array;  (** indexed by vid *)
  globals_base : int;
  globals_words : int;
  global_init : (int * int) list;  (** (absolute data address, value) *)
  entry : int;
  debug : (int, int * int) Hashtbl.t;  (** addr -> (fid, bid) ground truth *)
}

val find_instr : t -> int -> Ocolos_isa.Instr.t option
val instr_count : t -> int
val text_bytes : t -> int

(** Linear-scan address->function resolution (tests, small uses). *)
val func_of_addr : t -> int -> func_sym option

(** Sorted range index for fast address->fid lookup. *)
type addr_index

val build_addr_index : t -> addr_index
val index_lookup : addr_index -> int -> int option

val find_symbol_by_name : t -> string -> func_sym option
val section_named : t -> string -> section option

(** All direct call sites as (site address, callee entry address), in address
    order. OCOLOS parses these offline to shorten the stop-the-world phase. *)
val direct_call_sites : t -> (int * int) list

(** Instructions of one function in address order. *)
val func_instrs : t -> int -> (int * Ocolos_isa.Instr.t) list

val pp_summary : Format.formatter -> t -> unit
