(* objdump-style disassembly of binary images: functions in address order,
   instructions with addresses, basic-block boundaries from debug info, and
   symbolized targets for direct transfers. Used by the CLI's `disasm`
   command and handy when debugging layout transformations. *)

open Ocolos_isa

(* Symbolize a code address: "<name>" at entries, "<name>+0xoff>" inside. *)
let symbolize (b : Binary.t) index addr =
  match Binary.index_lookup index addr with
  | None -> Fmt.str "0x%x" addr
  | Some fid ->
    let s = b.Binary.symbols.(fid) in
    if addr = s.Binary.fs_entry then Fmt.str "<%s>" s.Binary.fs_name
    else Fmt.str "<%s+0x%x>" s.Binary.fs_name (addr - s.Binary.fs_entry)

let pp_instr_with_target b index fmt (addr, instr) =
  match Instr.static_target instr with
  | Some target ->
    Fmt.pf fmt "%a\t; -> %s" Instr.pp instr (symbolize b index target);
    ignore addr
  | None -> Instr.pp fmt instr

(* Disassemble one function (all its ranges, hot then cold split part). *)
let pp_function fmt (b : Binary.t) fid =
  let index = Binary.build_addr_index b in
  let s = b.Binary.symbols.(fid) in
  Fmt.pf fmt "%08x <%s>: (%d bytes%s)@." s.Binary.fs_entry s.Binary.fs_name
    (Binary.sym_size s)
    (if List.length s.Binary.fs_ranges > 1 then ", split" else "");
  let last_bid = ref (-1) in
  List.iter
    (fun (addr, instr) ->
      (match Hashtbl.find_opt b.Binary.debug addr with
      | Some (_, bid) when bid <> !last_bid ->
        last_bid := bid;
        Fmt.pf fmt "  .bb%d:@." bid
      | Some _ | None -> ());
      Fmt.pf fmt "    %08x:  %a@." addr (pp_instr_with_target b index) (addr, instr))
    (Binary.func_instrs b fid)

(* Section map plus every function, in address order. *)
let pp fmt (b : Binary.t) =
  Fmt.pf fmt "%a@.@." Binary.pp_summary b;
  List.iter
    (fun (s : Binary.section) ->
      Fmt.pf fmt "section %-14s [0x%x, 0x%x)@." s.Binary.sec_name s.Binary.sec_base
        (s.Binary.sec_base + s.Binary.sec_size))
    b.Binary.sections;
  Fmt.pf fmt "@.";
  Array.to_list b.Binary.symbols
  |> List.sort (fun (a : Binary.func_sym) b -> compare a.Binary.fs_entry b.Binary.fs_entry)
  |> List.iter (fun (s : Binary.func_sym) ->
         pp_function fmt b s.Binary.fs_fid;
         Fmt.pf fmt "@.")

let function_to_string b fid = Fmt.str "%a" (fun fmt () -> pp_function fmt b fid) ()
