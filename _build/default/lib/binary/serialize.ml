(* Binary image serialization: a compact single-file container ("OCLB")
   holding sections, code records, symbols, v-tables, globals, the entry
   point and debug info — enough to reload an identical Binary.t. Used by
   the CLI to save BOLTed binaries and reload them in later runs (the
   offline-BOLT deployment flow). *)

open Ocolos_isa

let magic = "OCLB\001"

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun s -> raise (Corrupt s)) fmt

(* ---- writing ---- *)

let put_int buf v = Encode.put_varint buf v

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_list buf put l =
  put_int buf (List.length l);
  List.iter (put buf) l

let put_array buf put a =
  put_int buf (Array.length a);
  Array.iter (put buf) a

let put_section buf (s : Binary.section) =
  put_string buf s.Binary.sec_name;
  put_int buf s.Binary.sec_base;
  put_int buf s.Binary.sec_size

let put_range buf (r : Binary.range) =
  put_int buf r.Binary.r_start;
  put_int buf r.Binary.r_size

let put_symbol buf (s : Binary.func_sym) =
  put_int buf s.Binary.fs_fid;
  put_string buf s.Binary.fs_name;
  put_int buf s.Binary.fs_entry;
  put_list buf put_range s.Binary.fs_ranges

let put_vtable buf (vt : Binary.vtable) =
  put_int buf vt.Binary.vt_id;
  put_int buf vt.Binary.vt_addr;
  put_array buf put_int vt.Binary.vt_entries

let to_bytes (b : Binary.t) =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  put_string buf b.Binary.name;
  put_list buf put_section b.Binary.sections;
  (* Code: delta-encoded addresses followed by the instruction record. *)
  put_int buf (Array.length b.Binary.code_order);
  let prev = ref 0 in
  Array.iter
    (fun addr ->
      put_int buf (addr - !prev);
      prev := addr;
      Encode.encode buf (Hashtbl.find b.Binary.code addr))
    b.Binary.code_order;
  put_array buf put_symbol b.Binary.symbols;
  put_array buf put_vtable b.Binary.vtables;
  put_int buf b.Binary.globals_base;
  put_int buf b.Binary.globals_words;
  put_list buf
    (fun buf (a, v) ->
      put_int buf a;
      put_int buf v)
    b.Binary.global_init;
  put_int buf b.Binary.entry;
  (* Debug info, in code order. *)
  put_int buf (Hashtbl.length b.Binary.debug);
  Array.iter
    (fun addr ->
      match Hashtbl.find_opt b.Binary.debug addr with
      | Some (fid, bid) ->
        put_int buf addr;
        put_int buf fid;
        put_int buf bid
      | None -> ())
    b.Binary.code_order;
  Buffer.to_bytes buf

(* ---- reading ---- *)

let get_int r = Encode.read_varint r

(* Strings are stored as raw bytes after their varint length. *)
let get_string r =
  let n = get_int r in
  if n < 0 then corrupt "negative string length";
  String.init n (fun _ -> Char.chr (Encode.read_byte r))

let get_list r get =
  let n = get_int r in
  if n < 0 then corrupt "negative list length";
  List.init n (fun _ -> get r)

let get_array r get =
  let n = get_int r in
  if n < 0 then corrupt "negative array length";
  Array.init n (fun _ -> get r)

let get_section r =
  let sec_name = get_string r in
  let sec_base = get_int r in
  let sec_size = get_int r in
  { Binary.sec_name; sec_base; sec_size }

let get_range r =
  let r_start = get_int r in
  let r_size = get_int r in
  { Binary.r_start; r_size }

let get_symbol r =
  let fs_fid = get_int r in
  let fs_name = get_string r in
  let fs_entry = get_int r in
  let fs_ranges = get_list r get_range in
  { Binary.fs_fid; fs_name; fs_entry; fs_ranges }

let get_vtable r =
  let vt_id = get_int r in
  let vt_addr = get_int r in
  let vt_entries = get_array r get_int in
  { Binary.vt_id; vt_addr; vt_entries }

let of_bytes bytes =
  let mlen = String.length magic in
  if Bytes.length bytes < mlen || Bytes.sub_string bytes 0 mlen <> magic then
    corrupt "bad magic";
  let r = Encode.reader_of_bytes (Bytes.sub bytes mlen (Bytes.length bytes - mlen)) in
  let name = get_string r in
  let sections = get_list r get_section in
  let ncode = get_int r in
  let code = Hashtbl.create (max 16 (2 * ncode)) in
  let code_order = Array.make ncode 0 in
  let prev = ref 0 in
  for i = 0 to ncode - 1 do
    let addr = !prev + get_int r in
    prev := addr;
    code_order.(i) <- addr;
    Hashtbl.replace code addr (Encode.decode r)
  done;
  let symbols = get_array r get_symbol in
  let vtables = get_array r get_vtable in
  let globals_base = get_int r in
  let globals_words = get_int r in
  let global_init =
    get_list r (fun r ->
        let a = get_int r in
        let v = get_int r in
        (a, v))
  in
  let entry = get_int r in
  let ndebug = get_int r in
  let debug = Hashtbl.create (max 16 (2 * ndebug)) in
  for _ = 1 to ndebug do
    let addr = get_int r in
    let fid = get_int r in
    let bid = get_int r in
    Hashtbl.replace debug addr (fid, bid)
  done;
  { Binary.name;
    sections;
    code;
    code_order;
    symbols;
    vtables;
    globals_base;
    globals_words;
    global_init;
    entry;
    debug }

let save path b =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes b))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let bytes = Bytes.create n in
      really_input ic bytes 0 n;
      of_bytes bytes)
