(** Machine-code emission: linearize an IR program under a layout.

    A two-pass assembler. Pass 1 chooses terminator encodings from the block
    order (a fallthrough needs no instruction; a conditional whose
    fallthrough is displaced needs an extra jump) and assigns byte
    addresses. Pass 2 resolves block and function addresses, materializes
    jump tables into the global data region and builds the symbol table. *)

val default_text_base : int
val default_globals_base : int
val func_alignment : int

val negate_cond : Ocolos_isa.Instr.cond -> Ocolos_isa.Instr.cond

type emitted = {
  binary : Binary.t;
  func_entry : (int, int) Hashtbl.t;  (** fid -> entry address (emitted fns) *)
  block_addr : (int * int, int) Hashtbl.t;  (** (fid, bid) -> address *)
}

(** [emit ~name program layout] assembles [program] under [layout].

    [extern_entry] supplies entry addresses for functions referenced but not
    present in [layout] (the BOLT path emits only hot functions and resolves
    calls to cold functions back into the original text). [emit_vtables]
    controls whether v-table images are produced (the BOLT merge path builds
    its own). Raises [Failure] if a referenced function has no address and
    {!Layout.Invalid} on malformed layouts. *)
val emit :
  ?text_base:int ->
  ?globals_base:int ->
  ?extern_entry:(int -> int option) ->
  ?section_name:string ->
  ?emit_vtables:bool ->
  name:string ->
  Ocolos_isa.Ir.program ->
  Layout.t ->
  emitted

(** Emit with the source-order layout (the unoptimized "original" binary). *)
val emit_default :
  ?text_base:int -> ?globals_base:int -> name:string -> Ocolos_isa.Ir.program -> emitted
