(* Machine-code emission: linearize an IR program under a layout.

   Two-pass assembler. Pass 1 chooses terminator encodings from the block
   order (fallthrough needs no instruction; a conditional with a displaced
   fallthrough needs an extra jump) and assigns byte addresses. Pass 2
   resolves block and function addresses into the instructions, materializes
   jump tables into the global data region, and builds the symbol table. *)

open Ocolos_isa

let default_text_base = 0x10000
let default_globals_base = 0x1000
let func_alignment = 16

let negate_cond = function
  | Instr.Eq -> Instr.Ne
  | Instr.Ne -> Instr.Eq
  | Instr.Lt -> Instr.Ge
  | Instr.Ge -> Instr.Lt
  | Instr.Gt -> Instr.Le
  | Instr.Le -> Instr.Gt

(* Pass-1 instruction with symbolic operands. *)
type pre_instr =
  | Fixed of Instr.t (* includes indirect calls: no static operand *)
  | CallF of int (* call function fid *)
  | FpCreateF of Instr.reg * int (* fid *)
  | BranchB of Instr.cond * Instr.reg * int (* block id, same function *)
  | JumpB of int (* block id, same function *)
  | TableBase of Instr.reg * Instr.reg * int (* dst <- sel + table base; table index *)

let pre_size = function
  | Fixed i -> Instr.size i
  | CallF _ -> Instr.size (Instr.Call 0)
  | FpCreateF (r, _) -> Instr.size (Instr.FpCreate (r, 0))
  | BranchB (c, r, _) -> Instr.size (Instr.Branch (c, r, 0))
  | JumpB _ -> Instr.size (Instr.Jump 0)
  | TableBase (d, s, _) -> Instr.size (Instr.Alui (Instr.Add, d, s, 0))

(* Lower one block given the block laid immediately after it (if any). Also
   returns jump-table allocations as (table index, target block ids). *)
let lower_block ~fresh_table (blk : Ir.block) ~(next : int option) =
  let body =
    List.map
      (fun si ->
        match si with
        | Ir.Plain i -> Fixed i
        | Ir.SCall fid -> CallF fid
        | Ir.SCallInd r -> Fixed (Instr.CallInd r)
        | Ir.SFpCreate (r, fid) -> FpCreateF (r, fid))
      blk.Ir.body
  in
  let term =
    match blk.Ir.term with
    | Ir.Tjump t -> if next = Some t then [] else [ JumpB t ]
    | Ir.Tbranch (c, r, taken, fall) ->
      if next = Some fall then [ BranchB (c, r, taken) ]
      else if next = Some taken then [ BranchB (negate_cond c, r, fall) ]
      else [ BranchB (c, r, taken); JumpB fall ]
    | Ir.Tret -> [ Fixed Instr.Ret ]
    | Ir.Thalt -> [ Fixed Instr.Halt ]
    | Ir.Tjump_table (sel, targets) ->
      let table = fresh_table targets in
      [ TableBase (Ir.scratch_reg, sel, table);
        Fixed (Instr.Load (Ir.scratch_reg, Ir.scratch_reg, 0));
        Fixed (Instr.JumpInd Ir.scratch_reg) ]
  in
  body @ term

type emitted = {
  binary : Binary.t;
  func_entry : (int, int) Hashtbl.t; (* fid -> entry address, emitted funcs *)
  block_addr : (int * int, int) Hashtbl.t; (* (fid, bid) -> address *)
}

let emit ?(text_base = default_text_base) ?(globals_base = default_globals_base)
    ?(extern_entry = fun _ -> None) ?(section_name = ".text") ?(emit_vtables = true)
    ~name (program : Ir.program) (layout : Layout.t) : emitted =
  Layout.validate program layout;
  (* Jump-table allocation: tables are appended to the globals region.
     Ownership (fid, word index, target block ids) drives pass-2 fill. *)
  let n_table_words = ref 0 in
  let current_fid = ref (-1) in
  let table_owners : (int * int * int array) list ref = ref [] in
  let fresh_table targets =
    let index = !n_table_words in
    n_table_words := !n_table_words + Array.length targets;
    table_owners := (!current_fid, index, targets) :: !table_owners;
    index
  in
  (* Emission units: all hot parts in layout order, then all cold parts. *)
  let units =
    List.map (fun (fl : Layout.func_layout) -> (fl.fid, fl.hot, `Hot)) layout
    @ List.filter_map
        (fun (fl : Layout.func_layout) ->
          match fl.cold with [] -> None | cold -> Some (fl.fid, cold, `Cold))
        layout
  in
  (* Pass 1: lower blocks and assign addresses. *)
  let block_addr : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let placed : (int * int * int * pre_instr list) list ref = ref [] in
  (* (fid, kind start addr, size, instrs) per unit for symbol ranges *)
  let unit_ranges : (int * [ `Hot | `Cold ] * Binary.range) list ref = ref [] in
  let cursor = ref text_base in
  let align n a = (n + a - 1) / a * a in
  List.iter
    (fun (fid, bids, kind) ->
      current_fid := fid;
      cursor := align !cursor func_alignment;
      let unit_start = !cursor in
      let f = program.Ir.funcs.(fid) in
      let bids_arr = Array.of_list bids in
      Array.iteri
        (fun i bid ->
          let next = if i + 1 < Array.length bids_arr then Some bids_arr.(i + 1) else None in
          let blk = f.Ir.blocks.(bid) in
          let instrs = lower_block ~fresh_table blk ~next in
          Hashtbl.replace block_addr (fid, bid) !cursor;
          let start = !cursor in
          let size = List.fold_left (fun acc i -> acc + pre_size i) 0 instrs in
          cursor := !cursor + size;
          placed := (fid, bid, start, instrs) :: !placed)
        bids_arr;
      unit_ranges :=
        (fid, kind, { Binary.r_start = unit_start; r_size = !cursor - unit_start })
        :: !unit_ranges)
    units;
  let text_end = !cursor in
  (* Function entries: address of the entry block for emitted functions. *)
  let func_entry = Hashtbl.create 64 in
  List.iter
    (fun (fl : Layout.func_layout) ->
      Hashtbl.replace func_entry fl.fid (Hashtbl.find block_addr (fl.fid, 0)))
    layout;
  let resolve_func fid =
    match Hashtbl.find_opt func_entry fid with
    | Some a -> a
    | None -> (
      match extern_entry fid with
      | Some a -> a
      | None -> Fmt.failwith "Emit: no address for function %d" fid)
  in
  (* Globals region: program globals then jump tables. *)
  let table_data_base = globals_base + program.Ir.globals_words in
  (* Pass 2: resolve operands and fill the code map. *)
  let code = Hashtbl.create 4096 in
  let debug = Hashtbl.create 4096 in
  let addrs = ref [] in
  List.iter
    (fun (fid, bid, start, instrs) ->
      let addr = ref start in
      List.iter
        (fun pre ->
          let concrete =
            match pre with
            | Fixed i -> i
            | CallF callee -> Instr.Call (resolve_func callee)
            | FpCreateF (r, callee) -> Instr.FpCreate (r, resolve_func callee)
            | BranchB (c, r, bid') -> Instr.Branch (c, r, Hashtbl.find block_addr (fid, bid'))
            | JumpB bid' -> Instr.Jump (Hashtbl.find block_addr (fid, bid'))
            | TableBase (d, s, index) ->
              Instr.Alui (Instr.Add, d, s, table_data_base + index)
          in
          Hashtbl.replace code !addr concrete;
          Hashtbl.replace debug !addr (fid, bid);
          addrs := !addr :: !addrs;
          addr := !addr + Instr.size concrete)
        instrs)
    !placed;
  let code_order = Array.of_list !addrs in
  Array.sort compare code_order;
  (* Jump-table initial data: absolute block addresses. *)
  let table_init =
    List.concat_map
      (fun (fid, index, targets) ->
        Array.to_list targets
        |> List.mapi (fun i bid ->
               (table_data_base + index + i, Hashtbl.find block_addr (fid, bid))))
      !table_owners
  in
  let globals_words_total = program.Ir.globals_words + !n_table_words in
  (* V-tables live right after the globals+tables in data memory. *)
  let vtables =
    if not emit_vtables then [||]
    else begin
      let vt_cursor = ref (globals_base + globals_words_total) in
      Array.mapi
        (fun vid entries ->
          let vt_addr = !vt_cursor in
          vt_cursor := !vt_cursor + Array.length entries;
          { Binary.vt_id = vid; vt_addr; vt_entries = Array.map resolve_func entries })
        program.Ir.vtables
    end
  in
  (* Symbol table: hot range first, then the cold range if the function was
     split. *)
  let symbols =
    List.map
      (fun (fl : Layout.func_layout) ->
        let ranges_of kind =
          List.filter_map
            (fun (fid, k, r) -> if fid = fl.fid && k = kind then Some r else None)
            !unit_ranges
        in
        { Binary.fs_fid = fl.fid;
          fs_name = program.Ir.funcs.(fl.fid).Ir.fname;
          fs_entry = Hashtbl.find func_entry fl.fid;
          fs_ranges = ranges_of `Hot @ ranges_of `Cold })
      layout
    |> List.sort (fun a b -> compare a.Binary.fs_fid b.Binary.fs_fid)
    |> Array.of_list
  in
  let global_init =
    List.map (fun (off, v) -> (globals_base + off, v)) program.Ir.global_init @ table_init
  in
  let entry =
    match Hashtbl.find_opt func_entry program.Ir.entry_fid with
    | Some a -> a
    | None -> ( match extern_entry program.Ir.entry_fid with Some a -> a | None -> 0)
  in
  let binary =
    { Binary.name;
      sections =
        [ { Binary.sec_name = section_name; sec_base = text_base; sec_size = text_end - text_base } ];
      code;
      code_order;
      symbols;
      vtables;
      globals_base;
      globals_words = globals_words_total;
      global_init;
      entry;
      debug }
  in
  { binary; func_entry; block_addr }

(* Convenience: emit with the source-order layout (the unoptimized binary a
   conventional compiler would produce). *)
let emit_default ?text_base ?globals_base ~name program =
  emit ?text_base ?globals_base ~name program (Layout.default program)
