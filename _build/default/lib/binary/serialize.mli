(** Binary image serialization ("OCLB" container): sections, code records,
    symbols, v-tables, globals, entry point and debug info — a loadable
    round-trip of {!Binary.t}. The CLI uses it to save BOLTed binaries for
    later runs (the offline-BOLT deployment flow). *)

exception Corrupt of string

val to_bytes : Binary.t -> Bytes.t

(** Raises {!Corrupt} (or {!Ocolos_isa.Encode.Decode_error}) on malformed
    images. *)
val of_bytes : Bytes.t -> Binary.t

val save : string -> Binary.t -> unit
val load : string -> Binary.t
