(* Tests for the workload generator and driver. *)

open Ocolos_workloads
open Ocolos_isa

let test_generation_validates () =
  List.iter
    (fun (w : Workload.t) -> Ir.validate w.Workload.program)
    [ Apps.tiny (); Apps.memcached_like () ]

let test_generation_deterministic () =
  let a = Apps.tiny () and b = Apps.tiny () in
  Alcotest.(check int) "same instr count"
    (Ocolos_binary.Binary.instr_count a.Workload.binary)
    (Ocolos_binary.Binary.instr_count b.Workload.binary);
  Alcotest.(check int) "same entry" a.Workload.binary.Ocolos_binary.Binary.entry
    b.Workload.binary.Ocolos_binary.Binary.entry

let test_no_jump_tables_lowered () =
  let w = Apps.tiny () in
  (* The OCOLOS target binary is compiled -fno-jump-tables: no JumpInd in
     the image even though the source had switches. *)
  Alcotest.(check bool) "source had tables" true
    (Ir.has_jump_tables w.Workload.gen.Gen.program);
  Alcotest.(check bool) "lowered" false (Ir.has_jump_tables w.Workload.program)

let test_params_in_range () =
  let w = Apps.tiny () in
  List.iter
    (fun input ->
      List.iter
        (fun (slot, v) ->
          Alcotest.(check bool) "slot positive" true (slot >= 0);
          Alcotest.(check bool)
            (Printf.sprintf "value %d in range" v)
            true
            (v >= 0 && v <= 1000 + (Gen.scan_stride_words * 100000)))
        (Gen.make_params w.Workload.gen input))
    w.Workload.inputs

let test_params_input_dependent () =
  let w = Apps.tiny () in
  let a = Gen.make_params w.Workload.gen (Workload.find_input w "a") in
  let b = Gen.make_params w.Workload.gen (Workload.find_input w "b") in
  Alcotest.(check bool) "different inputs differ" true (a <> b);
  (* Same input twice: identical. *)
  let a' = Gen.make_params w.Workload.gen (Workload.find_input w "a") in
  Alcotest.(check bool) "deterministic" true (a = a')

let test_error_sites_always_cold () =
  let w = Apps.tiny () in
  let params = Gen.make_params w.Workload.gen (Workload.find_input w "a") in
  Array.iter
    (fun (site : Gen.site) ->
      if site.Gen.kind = Gen.Error then
        Alcotest.(check int) "error threshold tiny" 2 (List.assoc site.Gen.slot params))
    w.Workload.gen.Gen.sites

let test_tx_mix_respected () =
  (* Input "a" biases type 0 at 80%: the observed tx counts should skew the
     same way; we verify indirectly through the cumulative slots. *)
  let w = Apps.tiny () in
  let input = Workload.find_input w "a" in
  let params = Gen.make_params w.Workload.gen input in
  let cum0 = List.assoc w.Workload.gen.Gen.tx_cum_slots.(0) params in
  let cum1 = List.assoc w.Workload.gen.Gen.tx_cum_slots.(1) params in
  Alcotest.(check int) "cum0 = 800" 800 cum0;
  Alcotest.(check int) "last cum = 1000" 1000 cum1

let test_finite_run_halts () =
  let w = Apps.tiny ~tx_limit:(Some 25) () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:20_000_000 proc;
  Array.iter
    (fun (t : Ocolos_proc.Thread.t) ->
      Alcotest.(check bool) "halted" true (t.Ocolos_proc.Thread.state = Ocolos_proc.Thread.Halted))
    proc.Ocolos_proc.Proc.threads;
  (* Each of the two threads runs its own 25-transaction loop. *)
  Alcotest.(check int) "transaction count" 50 (Ocolos_proc.Proc.transactions proc)

let test_server_run_never_halts () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  Ocolos_proc.Proc.run ~cycle_limit:50_000.0 proc;
  Alcotest.(check bool) "still running" true (Ocolos_proc.Proc.runnable proc);
  Alcotest.(check bool) "transactions flowing" true (Ocolos_proc.Proc.transactions proc > 10)

let test_input_switch_at_runtime () =
  (* OCOLOS's premise: inputs shift under a running server. Switching the
     input changes the transaction mix without relaunching. *)
  let w = Apps.tiny ~tx_limit:None () in
  let proc = Workload.launch w ~input:(Workload.find_input w "a") in
  Ocolos_proc.Proc.run ~cycle_limit:50_000.0 proc;
  Workload.set_input w proc (Workload.find_input w "b");
  let from = Ocolos_proc.Proc.max_cycles proc in
  Ocolos_proc.Proc.run ~cycle_limit:(from +. 50_000.0) proc;
  Alcotest.(check bool) "survived the switch" true (Ocolos_proc.Proc.transactions proc > 20)

let test_checksums_layout_invariant () =
  (* The core semantic property: emitting the same program under a random
     layout cannot change its observable behaviour. *)
  let w = Apps.tiny ~tx_limit:(Some 120) () in
  let input = Workload.find_input w "a" in
  let run binary =
    let proc = Workload.launch w ~binary ~input in
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:50_000_000 proc;
    (Workload.checksums proc, Ocolos_proc.Proc.transactions proc)
  in
  let reference = run w.Workload.binary in
  let rng = Ocolos_util.Rng.create 2024 in
  for _ = 1 to 3 do
    let layout = Ocolos_binary.Layout.randomize rng w.Workload.program in
    let e = Ocolos_binary.Emit.emit ~name:"rand" w.Workload.program layout in
    Alcotest.(check (pair (list int) int)) "same behaviour" reference
      (run e.Ocolos_binary.Emit.binary)
  done

let test_scan_workload_touches_dram () =
  let w = Apps.mongodb_like () in
  let input = Workload.find_input w "scan95_insert5" in
  let proc = Workload.launch w ~input in
  Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc;
  let c = Ocolos_proc.Proc.total_counters proc in
  Alcotest.(check bool) "significant DRAM traffic" true (c.Ocolos_uarch.Counters.l2_misses > 200);
  let td = Ocolos_uarch.Counters.topdown c in
  Alcotest.(check bool) "backend-bound-ish" true (td.Ocolos_uarch.Counters.backend > 0.15)

let test_clang_per_file_variation () =
  let w = Apps.clang_like ~tx_per_file:30 ~n_files:3 () in
  Alcotest.(check int) "3 files" 3 (List.length w.Workload.inputs);
  (* Different files have different bias seeds -> different checksums. *)
  let run input =
    let proc = Workload.launch w ~input in
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:20_000_000 proc;
    Workload.checksums proc
  in
  let c0 = run (List.nth w.Workload.inputs 0) in
  let c1 = run (List.nth w.Workload.inputs 1) in
  Alcotest.(check bool) "files differ" true (c0 <> c1)

let suite =
  [ Alcotest.test_case "generation validates" `Quick test_generation_validates;
    Alcotest.test_case "generation deterministic" `Quick test_generation_deterministic;
    Alcotest.test_case "jump tables lowered" `Quick test_no_jump_tables_lowered;
    Alcotest.test_case "params in range" `Quick test_params_in_range;
    Alcotest.test_case "params input dependent" `Quick test_params_input_dependent;
    Alcotest.test_case "error sites cold" `Quick test_error_sites_always_cold;
    Alcotest.test_case "tx mix respected" `Quick test_tx_mix_respected;
    Alcotest.test_case "finite run halts" `Quick test_finite_run_halts;
    Alcotest.test_case "server run persists" `Quick test_server_run_never_halts;
    Alcotest.test_case "input switch at runtime" `Quick test_input_switch_at_runtime;
    Alcotest.test_case "checksums layout-invariant" `Slow test_checksums_layout_invariant;
    Alcotest.test_case "scan workload hits DRAM" `Quick test_scan_workload_touches_dram;
    Alcotest.test_case "clang per-file variation" `Quick test_clang_per_file_variation ]
