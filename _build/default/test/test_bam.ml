(* Tests for BAM's exec-interception state machine and build scheduler. *)

module Bam = Ocolos_core.Bam

let cfg ?(jobs = 2) ?(k = 2) () =
  { Bam.jobs; profiles_wanted = k; perf_slowdown = 1.10 }

let test_state_machine_profiles_first_k () =
  let t = Bam.create ~config:(cfg ~k:2 ()) ~bolt_seconds:5.0 () in
  Alcotest.(check bool) "first profiled" true (Bam.on_exec t ~now:0.0 = Bam.Profiled);
  Alcotest.(check bool) "second profiled" true (Bam.on_exec t ~now:0.0 = Bam.Profiled);
  Alcotest.(check bool) "third original" true (Bam.on_exec t ~now:1.0 = Bam.Original)

let test_bolt_starts_after_kth_exit () =
  let t = Bam.create ~config:(cfg ~k:1 ()) ~bolt_seconds:5.0 () in
  let m = Bam.on_exec t ~now:0.0 in
  Bam.on_exit t ~now:10.0 m;
  (* BOLT ready at 15: execs before that still original, after optimized. *)
  Alcotest.(check bool) "before ready" true (Bam.on_exec t ~now:12.0 = Bam.Original);
  Alcotest.(check bool) "after ready" true (Bam.on_exec t ~now:15.0 = Bam.Optimized)

let test_simulate_build_counts () =
  let out =
    Bam.simulate_build ~config:(cfg ~jobs:2 ~k:3 ()) ~n_files:20
      ~t_orig:(fun _ -> 10.0)
      ~t_opt:(fun _ -> 7.0)
      ~bolt_seconds:5.0 ()
  in
  Alcotest.(check int) "profiled" 3 out.Bam.profiled_runs;
  Alcotest.(check int) "all jobs ran" 20
    (out.Bam.profiled_runs + out.Bam.original_runs + out.Bam.optimized_runs);
  Alcotest.(check bool) "some optimized" true (out.Bam.optimized_runs > 0);
  Alcotest.(check bool) "bolt ran" true (out.Bam.bolt_ready_at <> None)

let test_build_faster_than_original_when_speedup_real () =
  let baseline =
    Bam.simulate_build ~config:(cfg ~jobs:4 ~k:0 ()) ~n_files:40
      ~t_orig:(fun _ -> 10.0)
      ~t_opt:(fun _ -> 10.0)
      ~bolt_seconds:0.0 ()
  in
  let bam =
    Bam.simulate_build ~config:(cfg ~jobs:4 ~k:2 ()) ~n_files:40
      ~t_orig:(fun _ -> 10.0)
      ~t_opt:(fun _ -> 7.0)
      ~bolt_seconds:4.0 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "bam %.1f < baseline %.1f" bam.Bam.total_seconds baseline.Bam.total_seconds)
    true
    (bam.Bam.total_seconds < baseline.Bam.total_seconds)

let test_over_profiling_hurts () =
  (* Profiling every execution means the optimized binary never runs. *)
  let k_small =
    Bam.simulate_build ~config:(cfg ~jobs:4 ~k:2 ()) ~n_files:40
      ~t_orig:(fun _ -> 10.0)
      ~t_opt:(fun _ -> 7.0)
      ~bolt_seconds:4.0 ()
  in
  let k_all =
    Bam.simulate_build ~config:(cfg ~jobs:4 ~k:40 ()) ~n_files:40
      ~t_orig:(fun _ -> 10.0)
      ~t_opt:(fun _ -> 7.0)
      ~bolt_seconds:4.0 ()
  in
  Alcotest.(check bool) "over-profiling slower" true
    (k_all.Bam.total_seconds > k_small.Bam.total_seconds);
  Alcotest.(check int) "nothing optimized" 0 k_all.Bam.optimized_runs

(* ---- scheduler edge cases ---- *)

let test_more_jobs_than_files () =
  (* Slots beyond the file count must idle harmlessly: everything launches
     at t=0 and the makespan is one slowed profile run. *)
  let out =
    Bam.simulate_build ~config:(cfg ~jobs:16 ~k:2 ()) ~n_files:3
      ~t_orig:(fun _ -> 10.0)
      ~t_opt:(fun _ -> 7.0)
      ~bolt_seconds:5.0 ()
  in
  Alcotest.(check int) "all three ran" 3
    (out.Bam.profiled_runs + out.Bam.original_runs + out.Bam.optimized_runs);
  Alcotest.(check int) "profiled capped by k" 2 out.Bam.profiled_runs;
  Alcotest.(check int) "nothing optimized (all launched at t=0)" 0 out.Bam.optimized_runs;
  Alcotest.(check (float 1e-6)) "makespan = one profiled run" (10.0 *. 1.10)
    out.Bam.total_seconds

let test_bolt_finishes_mid_build () =
  (* Serial schedule so BOLT readiness lands at a known time: the profiled
     run ends at 12.1, BOLT is ready at 14.1 — while file 2 (launched at
     12.1, still original) is compiling — so files 3..5 run optimized. *)
  let out =
    Bam.simulate_build ~config:(cfg ~jobs:1 ~k:1 ()) ~n_files:5
      ~t_orig:(fun _ -> 11.0)
      ~t_opt:(fun _ -> 6.0)
      ~bolt_seconds:2.0 ()
  in
  (match out.Bam.bolt_ready_at with
  | Some t -> Alcotest.(check (float 1e-6)) "bolt ready mid-build" (11.0 *. 1.10 +. 2.0) t
  | None -> Alcotest.fail "bolt never ready");
  Alcotest.(check int) "one profiled" 1 out.Bam.profiled_runs;
  (* File 2 launches before readiness, files 3..5 after. *)
  Alcotest.(check int) "one original" 1 out.Bam.original_runs;
  Alcotest.(check int) "rest optimized" 3 out.Bam.optimized_runs;
  Alcotest.(check (float 1e-6)) "makespan accounts for the switch"
    ((11.0 *. 1.10) +. 11.0 +. (3.0 *. 6.0))
    out.Bam.total_seconds

let test_profiles_wanted_zero () =
  (* k = 0: BOLT can never start (no profiles), so every run is original
     and the state machine never transitions. *)
  let out =
    Bam.simulate_build ~config:(cfg ~jobs:2 ~k:0 ()) ~n_files:10
      ~t_orig:(fun _ -> 4.0)
      ~t_opt:(fun _ -> 1.0)
      ~bolt_seconds:1.0 ()
  in
  Alcotest.(check int) "nothing profiled" 0 out.Bam.profiled_runs;
  Alcotest.(check int) "all original" 10 out.Bam.original_runs;
  Alcotest.(check int) "nothing optimized" 0 out.Bam.optimized_runs;
  Alcotest.(check (float 1e-6)) "plain 2-slot makespan" 20.0 out.Bam.total_seconds

let test_makespan_consistency () =
  (* With 1 job slot the makespan is the serial sum. *)
  let out =
    Bam.simulate_build ~config:(cfg ~jobs:1 ~k:0 ()) ~n_files:5
      ~t_orig:(fun _ -> 3.0)
      ~t_opt:(fun _ -> 3.0)
      ~bolt_seconds:0.0 ()
  in
  Alcotest.(check (float 1e-6)) "serial sum" 15.0 out.Bam.total_seconds

let suite =
  [ Alcotest.test_case "profiles first k" `Quick test_state_machine_profiles_first_k;
    Alcotest.test_case "bolt after kth exit" `Quick test_bolt_starts_after_kth_exit;
    Alcotest.test_case "simulate build counts" `Quick test_simulate_build_counts;
    Alcotest.test_case "bam beats baseline" `Quick test_build_faster_than_original_when_speedup_real;
    Alcotest.test_case "over-profiling hurts" `Quick test_over_profiling_hurts;
    Alcotest.test_case "more jobs than files" `Quick test_more_jobs_than_files;
    Alcotest.test_case "bolt finishes mid-build" `Quick test_bolt_finishes_mid_build;
    Alcotest.test_case "profiles-wanted zero" `Quick test_profiles_wanted_zero;
    Alcotest.test_case "makespan consistency" `Quick test_makespan_consistency ]
