(* Tests for BAM's exec-interception state machine and build scheduler. *)

module Bam = Ocolos_core.Bam

let cfg ?(jobs = 2) ?(k = 2) () =
  { Bam.jobs; profiles_wanted = k; perf_slowdown = 1.10 }

let test_state_machine_profiles_first_k () =
  let t = Bam.create ~config:(cfg ~k:2 ()) ~bolt_seconds:5.0 () in
  Alcotest.(check bool) "first profiled" true (Bam.on_exec t ~now:0.0 = Bam.Profiled);
  Alcotest.(check bool) "second profiled" true (Bam.on_exec t ~now:0.0 = Bam.Profiled);
  Alcotest.(check bool) "third original" true (Bam.on_exec t ~now:1.0 = Bam.Original)

let test_bolt_starts_after_kth_exit () =
  let t = Bam.create ~config:(cfg ~k:1 ()) ~bolt_seconds:5.0 () in
  let m = Bam.on_exec t ~now:0.0 in
  Bam.on_exit t ~now:10.0 m;
  (* BOLT ready at 15: execs before that still original, after optimized. *)
  Alcotest.(check bool) "before ready" true (Bam.on_exec t ~now:12.0 = Bam.Original);
  Alcotest.(check bool) "after ready" true (Bam.on_exec t ~now:15.0 = Bam.Optimized)

let test_simulate_build_counts () =
  let out =
    Bam.simulate_build ~config:(cfg ~jobs:2 ~k:3 ()) ~n_files:20
      ~t_orig:(fun _ -> 10.0)
      ~t_opt:(fun _ -> 7.0)
      ~bolt_seconds:5.0 ()
  in
  Alcotest.(check int) "profiled" 3 out.Bam.profiled_runs;
  Alcotest.(check int) "all jobs ran" 20
    (out.Bam.profiled_runs + out.Bam.original_runs + out.Bam.optimized_runs);
  Alcotest.(check bool) "some optimized" true (out.Bam.optimized_runs > 0);
  Alcotest.(check bool) "bolt ran" true (out.Bam.bolt_ready_at <> None)

let test_build_faster_than_original_when_speedup_real () =
  let baseline =
    Bam.simulate_build ~config:(cfg ~jobs:4 ~k:0 ()) ~n_files:40
      ~t_orig:(fun _ -> 10.0)
      ~t_opt:(fun _ -> 10.0)
      ~bolt_seconds:0.0 ()
  in
  let bam =
    Bam.simulate_build ~config:(cfg ~jobs:4 ~k:2 ()) ~n_files:40
      ~t_orig:(fun _ -> 10.0)
      ~t_opt:(fun _ -> 7.0)
      ~bolt_seconds:4.0 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "bam %.1f < baseline %.1f" bam.Bam.total_seconds baseline.Bam.total_seconds)
    true
    (bam.Bam.total_seconds < baseline.Bam.total_seconds)

let test_over_profiling_hurts () =
  (* Profiling every execution means the optimized binary never runs. *)
  let k_small =
    Bam.simulate_build ~config:(cfg ~jobs:4 ~k:2 ()) ~n_files:40
      ~t_orig:(fun _ -> 10.0)
      ~t_opt:(fun _ -> 7.0)
      ~bolt_seconds:4.0 ()
  in
  let k_all =
    Bam.simulate_build ~config:(cfg ~jobs:4 ~k:40 ()) ~n_files:40
      ~t_orig:(fun _ -> 10.0)
      ~t_opt:(fun _ -> 7.0)
      ~bolt_seconds:4.0 ()
  in
  Alcotest.(check bool) "over-profiling slower" true
    (k_all.Bam.total_seconds > k_small.Bam.total_seconds);
  Alcotest.(check int) "nothing optimized" 0 k_all.Bam.optimized_runs

let test_makespan_consistency () =
  (* With 1 job slot the makespan is the serial sum. *)
  let out =
    Bam.simulate_build ~config:(cfg ~jobs:1 ~k:0 ()) ~n_files:5
      ~t_orig:(fun _ -> 3.0)
      ~t_opt:(fun _ -> 3.0)
      ~bolt_seconds:0.0 ()
  in
  Alcotest.(check (float 1e-6)) "serial sum" 15.0 out.Bam.total_seconds

let suite =
  [ Alcotest.test_case "profiles first k" `Quick test_state_machine_profiles_first_k;
    Alcotest.test_case "bolt after kth exit" `Quick test_bolt_starts_after_kth_exit;
    Alcotest.test_case "simulate build counts" `Quick test_simulate_build_counts;
    Alcotest.test_case "bam beats baseline" `Quick test_build_faster_than_original_when_speedup_real;
    Alcotest.test_case "over-profiling hurts" `Quick test_over_profiling_hurts;
    Alcotest.test_case "makespan consistency" `Quick test_makespan_consistency ]
