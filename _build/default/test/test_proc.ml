(* Unit tests for the process substrate: interpreter semantics, scheduler,
   hooks, stack walking, pause/resume. *)

open Ocolos_isa
open Ocolos_proc

(* Emit and launch a one-function program from raw blocks. *)
let launch_blocks ?(vtables = [||]) ?(globals_words = 8) ?(global_init = [])
    ?(extra_funcs = []) blocks =
  let main = { Ir.fid = 0; fname = "main"; blocks } in
  let funcs = Array.of_list (main :: extra_funcs) in
  let p = { Ir.funcs; vtables; entry_fid = 0; globals_words; global_init } in
  Ir.validate p;
  let e = Ocolos_binary.Emit.emit_default ~name:"t" p in
  Proc.load ~nthreads:1 e.Ocolos_binary.Emit.binary

let run_to_halt proc = Proc.run ~cycle_limit:infinity ~max_instrs:1_000_000 proc

let test_alu_and_halt () =
  let proc =
    launch_blocks
      [| { Ir.bid = 0;
           body =
             [ Ir.Plain (Instr.Movi (0, 21));
               Ir.Plain (Instr.Alui (Instr.Mul, 1, 0, 2));
               Ir.Plain (Instr.Alu (Instr.Add, 2, 1, 0)) ];
           term = Ir.Thalt } |]
  in
  run_to_halt proc;
  let t = proc.Proc.threads.(0) in
  Alcotest.(check int) "r1 = 42" 42 t.Thread.regs.(1);
  Alcotest.(check int) "r2 = 63" 63 t.Thread.regs.(2);
  Alcotest.(check bool) "halted" true (t.Thread.state = Thread.Halted)

let test_load_store_globals () =
  let proc =
    launch_blocks ~global_init:[ (3, 123) ]
      [| { Ir.bid = 0;
           body =
             [ Ir.Plain (Instr.Load (1, 10, Ocolos_binary.Emit.default_globals_base + 3));
               Ir.Plain (Instr.Alui (Instr.Add, 1, 1, 1));
               Ir.Plain (Instr.Store (1, 10, Ocolos_binary.Emit.default_globals_base + 4)) ];
           term = Ir.Thalt } |]
  in
  run_to_halt proc;
  Alcotest.(check int) "loaded global" 124 proc.Proc.threads.(0).Thread.regs.(1);
  Alcotest.(check int) "stored global" 124 (Proc.read_global proc 4)

let test_branch_directions () =
  let proc =
    launch_blocks
      [| { Ir.bid = 0;
           body = [ Ir.Plain (Instr.Movi (0, 1)) ];
           term = Ir.Tbranch (Instr.Gt, 0, 1, 2) };
         { Ir.bid = 1; body = [ Ir.Plain (Instr.Movi (5, 111)) ]; term = Ir.Thalt };
         { Ir.bid = 2; body = [ Ir.Plain (Instr.Movi (5, 222)) ]; term = Ir.Thalt } |]
  in
  run_to_halt proc;
  Alcotest.(check int) "taken path" 111 proc.Proc.threads.(0).Thread.regs.(5)

let test_call_ret_stack () =
  let callee =
    { Ir.fid = 1;
      fname = "callee";
      blocks = [| { Ir.bid = 0; body = [ Ir.Plain (Instr.Movi (7, 7)) ]; term = Ir.Tret } |] }
  in
  let proc =
    launch_blocks ~extra_funcs:[ callee ]
      [| { Ir.bid = 0;
           body = [ Ir.SCall 1; Ir.Plain (Instr.Alui (Instr.Add, 7, 7, 1)) ];
           term = Ir.Thalt } |]
  in
  run_to_halt proc;
  Alcotest.(check int) "callee ran then returned" 8 proc.Proc.threads.(0).Thread.regs.(7);
  Alcotest.(check int) "stack empty at halt" 0 proc.Proc.threads.(0).Thread.depth

let test_ret_on_empty_stack_halts () =
  let proc = launch_blocks [| { Ir.bid = 0; body = []; term = Ir.Tret } |] in
  run_to_halt proc;
  Alcotest.(check bool) "halted" true (proc.Proc.threads.(0).Thread.state = Thread.Halted)

let test_vtable_dispatch () =
  let callee =
    { Ir.fid = 1;
      fname = "virt";
      blocks = [| { Ir.bid = 0; body = [ Ir.Plain (Instr.Movi (6, 66)) ]; term = Ir.Tret } |] }
  in
  let proc =
    launch_blocks ~vtables:[| [| 1 |] |] ~extra_funcs:[ callee ]
      [| { Ir.bid = 0;
           body = [ Ir.Plain (Instr.VtLoad (4, 0, 0)); Ir.SCallInd 4 ];
           term = Ir.Thalt } |]
  in
  run_to_halt proc;
  Alcotest.(check int) "virtual call ran" 66 proc.Proc.threads.(0).Thread.regs.(6)

let test_fp_hook_translation () =
  let callee =
    { Ir.fid = 1;
      fname = "f";
      blocks = [| { Ir.bid = 0; body = [ Ir.Plain (Instr.Movi (6, 1)) ]; term = Ir.Tret } |] }
  in
  let proc =
    launch_blocks ~extra_funcs:[ callee ]
      [| { Ir.bid = 0; body = [ Ir.SFpCreate (3, 1) ]; term = Ir.Thalt } |]
  in
  (* Hook rewrites every created pointer to a sentinel. *)
  proc.Proc.hooks.translate_fp <- Some (fun _ -> 0xDEAD);
  run_to_halt proc;
  Alcotest.(check int) "hook applied" 0xDEAD proc.Proc.threads.(0).Thread.regs.(3)

let test_rand_deterministic_per_seed () =
  let mk () =
    launch_blocks
      [| { Ir.bid = 0;
           body = [ Ir.Plain (Instr.Rand (1, 1000)); Ir.Plain (Instr.Rand (2, 1000)) ];
           term = Ir.Thalt } |]
  in
  let p1 = mk () and p2 = mk () in
  run_to_halt p1;
  run_to_halt p2;
  Alcotest.(check int) "same r1" p1.Proc.threads.(0).Thread.regs.(1)
    p2.Proc.threads.(0).Thread.regs.(1);
  Alcotest.(check int) "same r2" p1.Proc.threads.(0).Thread.regs.(2)
    p2.Proc.threads.(0).Thread.regs.(2)

let test_unmapped_fetch_faults () =
  let proc = launch_blocks [| { Ir.bid = 0; body = []; term = Ir.Tret } |] in
  proc.Proc.threads.(0).Thread.pc <- 0xBAD000;
  Alcotest.(check bool) "fault raised" true
    (match Proc.step proc proc.Proc.threads.(0) with
    | exception Proc.Fault _ -> true
    | () -> false);
  Alcotest.(check bool) "thread marked faulted" true
    (match proc.Proc.threads.(0).Thread.state with Thread.Faulted _ -> true | _ -> false)

let test_branch_hook_sees_taken_transfers () =
  let callee =
    { Ir.fid = 1;
      fname = "f";
      blocks = [| { Ir.bid = 0; body = []; term = Ir.Tret } |] }
  in
  let proc =
    launch_blocks ~extra_funcs:[ callee ]
      [| { Ir.bid = 0; body = [ Ir.SCall 1 ]; term = Ir.Thalt } |]
  in
  let kinds = ref [] in
  proc.Proc.hooks.on_taken_branch <-
    Some (fun ~tid:_ ~from_addr:_ ~to_addr:_ ~kind ~cycles:_ -> kinds := kind :: !kinds);
  run_to_halt proc;
  Alcotest.(check bool) "call observed" true (List.mem Proc.DirectCall !kinds);
  Alcotest.(check bool) "return observed" true (List.mem Proc.Return !kinds)

let test_pause_blocks_run () =
  let proc = launch_blocks [| { Ir.bid = 0; body = []; term = Ir.Thalt } |] in
  Proc.pause proc;
  Alcotest.(check bool) "run refused while paused" true
    (match Proc.run ~cycle_limit:10.0 proc with
    | exception Invalid_argument _ -> true
    | () -> false);
  Proc.resume proc;
  Proc.run ~cycle_limit:10.0 proc

let test_multi_thread_round_robin () =
  (* Two threads increment their own r1 in an infinite loop; both make
     progress under the cycle horizon. *)
  let blocks =
    [| { Ir.bid = 0; body = [ Ir.Plain (Instr.Alui (Instr.Add, 1, 1, 1)) ]; term = Ir.Tjump 0 } |]
  in
  let main = { Ir.fid = 0; fname = "main"; blocks } in
  let p =
    { Ir.funcs = [| main |]; vtables = [||]; entry_fid = 0; globals_words = 0; global_init = [] }
  in
  let e = Ocolos_binary.Emit.emit_default ~name:"t" p in
  let proc = Proc.load ~nthreads:2 e.Ocolos_binary.Emit.binary in
  Proc.run ~cycle_limit:5000.0 proc;
  Array.iter
    (fun t -> Alcotest.(check bool) "made progress" true (t.Thread.regs.(1) > 100))
    proc.Proc.threads;
  Alcotest.(check bool) "cycle horizon respected" true (Proc.max_cycles proc <= 5100.0)

let test_stack_walk () =
  (* main -> a -> b(halts): both return addresses visible mid-execution. *)
  let b_fn =
    { Ir.fid = 2; fname = "b"; blocks = [| { Ir.bid = 0; body = []; term = Ir.Thalt } |] }
  in
  let a_fn =
    { Ir.fid = 1; fname = "a"; blocks = [| { Ir.bid = 0; body = [ Ir.SCall 2 ]; term = Ir.Tret } |] }
  in
  let proc =
    launch_blocks ~extra_funcs:[ a_fn; b_fn ]
      [| { Ir.bid = 0; body = [ Ir.SCall 1 ]; term = Ir.Thalt } |]
  in
  run_to_halt proc;
  let t = proc.Proc.threads.(0) in
  (* Halt leaves the frames in place. *)
  Alcotest.(check int) "two frames" 2 (List.length (Thread.return_addresses t));
  List.iter
    (fun addr ->
      Alcotest.(check bool) "return addr maps to a function" true
        (Addr_space.fid_of_addr proc.Proc.mem addr <> None))
    (Thread.return_addresses t)

let test_reserve_code_fresh () =
  let proc = launch_blocks [| { Ir.bid = 0; body = []; term = Ir.Thalt } |] in
  let a = Addr_space.reserve_code proc.Proc.mem 1000 in
  let b = Addr_space.reserve_code proc.Proc.mem 1000 in
  Alcotest.(check bool) "disjoint" true (b >= a + 1000);
  Alcotest.(check bool) "above text" true
    (Addr_space.read_code proc.Proc.mem a = None)

let suite =
  [ Alcotest.test_case "alu and halt" `Quick test_alu_and_halt;
    Alcotest.test_case "load/store globals" `Quick test_load_store_globals;
    Alcotest.test_case "branch directions" `Quick test_branch_directions;
    Alcotest.test_case "call/ret stack" `Quick test_call_ret_stack;
    Alcotest.test_case "ret on empty stack halts" `Quick test_ret_on_empty_stack_halts;
    Alcotest.test_case "vtable dispatch" `Quick test_vtable_dispatch;
    Alcotest.test_case "fp hook translation" `Quick test_fp_hook_translation;
    Alcotest.test_case "rand deterministic" `Quick test_rand_deterministic_per_seed;
    Alcotest.test_case "unmapped fetch faults" `Quick test_unmapped_fetch_faults;
    Alcotest.test_case "branch hook" `Quick test_branch_hook_sees_taken_transfers;
    Alcotest.test_case "pause blocks run" `Quick test_pause_blocks_run;
    Alcotest.test_case "multi-thread round robin" `Quick test_multi_thread_round_robin;
    Alcotest.test_case "stack walk" `Quick test_stack_walk;
    Alcotest.test_case "reserve code fresh" `Quick test_reserve_code_fresh ]
