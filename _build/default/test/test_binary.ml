(* Unit tests for binaries, layouts and the emitter. *)

open Ocolos_isa
open Ocolos_binary

(* Three functions: main calls f via direct call and g via fp; f has a
   diamond; g is a leaf. *)
let program () =
  let main =
    { Ir.fid = 0;
      fname = "main";
      blocks =
        [| { Ir.bid = 0;
             body = [ Ir.SCall 1; Ir.SFpCreate (3, 2); Ir.SCallInd 3; Ir.Plain Instr.TxMark ];
             term = Ir.Thalt } |] }
  in
  let f =
    { Ir.fid = 1;
      fname = "f";
      blocks =
        [| { Ir.bid = 0; body = [ Ir.Plain (Instr.Rand (0, 2)) ]; term = Ir.Tbranch (Instr.Eq, 0, 2, 1) };
           { Ir.bid = 1; body = [ Ir.Plain (Instr.Movi (1, 1)) ]; term = Ir.Tjump 3 };
           { Ir.bid = 2; body = [ Ir.Plain (Instr.Movi (1, 2)) ]; term = Ir.Tjump 3 };
           { Ir.bid = 3; body = []; term = Ir.Tret } |] }
  in
  let g =
    { Ir.fid = 2;
      fname = "g";
      blocks = [| { Ir.bid = 0; body = [ Ir.Plain (Instr.Movi (2, 9)) ]; term = Ir.Tret } |] }
  in
  { Ir.funcs = [| main; f; g |];
    vtables = [| [| 1; 2 |] |];
    entry_fid = 0;
    globals_words = 8;
    global_init = [ (1, 77) ] }

let emit_it ?layout () =
  let p = program () in
  match layout with
  | None -> Emit.emit_default ~name:"t" p
  | Some l -> Emit.emit ~name:"t" p l

let test_emit_basic () =
  let e = emit_it () in
  let b = e.Emit.binary in
  Alcotest.(check int) "3 symbols" 3 (Array.length b.Binary.symbols);
  Alcotest.(check bool) "entry is main's" true (b.Binary.entry = b.Binary.symbols.(0).Binary.fs_entry);
  Alcotest.(check bool) "instrs present" true (Binary.instr_count b > 5);
  Alcotest.(check bool) "text bytes positive" true (Binary.text_bytes b > 0);
  Alcotest.(check bool) ".text section" true (Binary.section_named b ".text" <> None)

let test_function_alignment () =
  let e = emit_it () in
  Array.iter
    (fun s -> Alcotest.(check int) "aligned" 0 (s.Binary.fs_entry mod Emit.func_alignment))
    e.Emit.binary.Binary.symbols

let test_addr_resolution () =
  let e = emit_it () in
  let b = e.Emit.binary in
  let index = Binary.build_addr_index b in
  Array.iter
    (fun addr ->
      let via_index = Binary.index_lookup index addr in
      let via_scan = Option.map (fun s -> s.Binary.fs_fid) (Binary.func_of_addr b addr) in
      Alcotest.(check (option int)) "index agrees with scan" via_scan via_index)
    b.Binary.code_order;
  Alcotest.(check (option int)) "unmapped" None (Binary.index_lookup index 0x9999999)

let test_direct_call_sites () =
  let e = emit_it () in
  let b = e.Emit.binary in
  let sites = Binary.direct_call_sites b in
  Alcotest.(check int) "one direct call" 1 (List.length sites);
  let _, target = List.hd sites in
  Alcotest.(check int) "targets f" b.Binary.symbols.(1).Binary.fs_entry target

let test_vtable_entries_resolved () =
  let e = emit_it () in
  let b = e.Emit.binary in
  Alcotest.(check int) "vt entry 0 = f" b.Binary.symbols.(1).Binary.fs_entry
    b.Binary.vtables.(0).Binary.vt_entries.(0);
  Alcotest.(check int) "vt entry 1 = g" b.Binary.symbols.(2).Binary.fs_entry
    b.Binary.vtables.(0).Binary.vt_entries.(1)

let test_global_init_offsets () =
  let e = emit_it () in
  let b = e.Emit.binary in
  Alcotest.(check bool) "init rebased to absolute" true
    (List.mem (b.Binary.globals_base + 1, 77) b.Binary.global_init)

let test_fallthrough_elision () =
  (* In the default layout, f's branch fallthrough (bid 1) follows bid 0, so
     no jump is emitted for it, while bid 2's Tjump 3 is elided when 3
     follows. Verify by counting Jump instructions in f. *)
  let e = emit_it () in
  let b = e.Emit.binary in
  let jumps =
    Binary.func_instrs b 1
    |> List.filter (fun (_, i) -> match i with Instr.Jump _ -> true | _ -> false)
  in
  (* bid1 needs a jump over bid2 to reach bid3; bid2 falls into bid3. *)
  Alcotest.(check int) "exactly one jump in f" 1 (List.length jumps)

let test_layout_changes_encoding () =
  (* Reversing the diamond arms flips which side needs a jump; code size may
     change but the instruction mix stays consistent. *)
  let layout =
    [ { Layout.fid = 0; hot = [ 0 ]; cold = [] };
      { Layout.fid = 1; hot = [ 0; 2; 1; 3 ]; cold = [] };
      { Layout.fid = 2; hot = [ 0 ]; cold = [] } ]
  in
  let e = emit_it ~layout () in
  let b = e.Emit.binary in
  (* Branch in f's entry must now be negated to fall through into bid 2. *)
  let branches =
    Binary.func_instrs b 1
    |> List.filter_map (fun (_, i) ->
           match i with Instr.Branch (c, _, _) -> Some c | _ -> None)
  in
  Alcotest.(check bool) "negated branch" true (branches = [ Instr.Ne ])

let test_cold_split_ranges () =
  let layout =
    [ { Layout.fid = 0; hot = [ 0 ]; cold = [] };
      { Layout.fid = 1; hot = [ 0; 1; 3 ]; cold = [ 2 ] };
      { Layout.fid = 2; hot = [ 0 ]; cold = [] } ]
  in
  let e = emit_it ~layout () in
  let b = e.Emit.binary in
  let f = b.Binary.symbols.(1) in
  Alcotest.(check int) "two ranges (hot + cold)" 2 (List.length f.Binary.fs_ranges);
  (* The cold range sits after all hot code. *)
  let hot_range = List.hd f.Binary.fs_ranges and cold_range = List.nth f.Binary.fs_ranges 1 in
  Alcotest.(check bool) "cold after hot" true
    (cold_range.Binary.r_start > hot_range.Binary.r_start)

let test_layout_validate_rejects () =
  let p = program () in
  let bad = [ { Layout.fid = 1; hot = [ 1; 0; 2; 3 ]; cold = [] } ] in
  Alcotest.(check bool) "entry not first" true
    (match Layout.validate p bad with exception Layout.Invalid _ -> true | () -> false);
  let dup = [ { Layout.fid = 1; hot = [ 0; 1; 1; 2; 3 ]; cold = [] } ] in
  Alcotest.(check bool) "duplicate block" true
    (match Layout.validate p dup with exception Layout.Invalid _ -> true | () -> false);
  let missing = [ { Layout.fid = 1; hot = [ 0; 1 ]; cold = [] } ] in
  Alcotest.(check bool) "missing block" true
    (match Layout.validate p missing with exception Layout.Invalid _ -> true | () -> false)

let test_randomize_layouts_valid () =
  let p = program () in
  let rng = Ocolos_util.Rng.create 99 in
  for _ = 1 to 50 do
    Layout.validate p (Layout.randomize rng p)
  done

let test_jump_table_emission () =
  let f =
    { Ir.fid = 0;
      fname = "switchy";
      blocks =
        [| { Ir.bid = 0;
             body = [ Ir.Plain (Instr.Rand (2, 3)) ];
             term = Ir.Tjump_table (2, [| 1; 2; 3 |]) };
           { Ir.bid = 1; body = []; term = Ir.Thalt };
           { Ir.bid = 2; body = []; term = Ir.Thalt };
           { Ir.bid = 3; body = []; term = Ir.Thalt } |] }
  in
  let p =
    { Ir.funcs = [| f |]; vtables = [||]; entry_fid = 0; globals_words = 2; global_init = [] }
  in
  let e = Emit.emit_default ~name:"jt" p in
  let b = e.Emit.binary in
  (* Three table words materialized in the globals region, holding the
     absolute addresses of blocks 1..3. *)
  let table_words =
    List.filter (fun (addr, _) -> addr >= b.Binary.globals_base + 2) b.Binary.global_init
  in
  Alcotest.(check int) "three table entries" 3 (List.length table_words);
  List.iter
    (fun (_, target) ->
      Alcotest.(check bool) "table entry is code" true (Binary.find_instr b target <> None))
    table_words

let test_negate_cond_involution () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "involution" true (Emit.negate_cond (Emit.negate_cond c) = c);
      (* Negation complements the predicate on every value. *)
      List.iter
        (fun v ->
          Alcotest.(check bool) "complement" (not (Instr.eval_cond c v))
            (Instr.eval_cond (Emit.negate_cond c) v))
        [ -5; -1; 0; 1; 5 ])
    [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Ge; Instr.Gt; Instr.Le ]

let suite =
  [ Alcotest.test_case "emit basic" `Quick test_emit_basic;
    Alcotest.test_case "function alignment" `Quick test_function_alignment;
    Alcotest.test_case "address resolution" `Quick test_addr_resolution;
    Alcotest.test_case "direct call sites" `Quick test_direct_call_sites;
    Alcotest.test_case "vtable entries resolved" `Quick test_vtable_entries_resolved;
    Alcotest.test_case "global init offsets" `Quick test_global_init_offsets;
    Alcotest.test_case "fallthrough elision" `Quick test_fallthrough_elision;
    Alcotest.test_case "layout changes encoding" `Quick test_layout_changes_encoding;
    Alcotest.test_case "cold split ranges" `Quick test_cold_split_ranges;
    Alcotest.test_case "layout validation" `Quick test_layout_validate_rejects;
    Alcotest.test_case "randomized layouts valid" `Quick test_randomize_layouts_valid;
    Alcotest.test_case "jump table emission" `Quick test_jump_table_emission;
    Alcotest.test_case "negate_cond involution" `Quick test_negate_cond_involution ]
