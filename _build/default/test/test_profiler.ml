(* Unit tests for the profiling stack: LBR ring, perf sessions, profile
   aggregation and perf2bolt conversion. *)

open Ocolos_workloads

let test_lbr_ring () =
  let l = Ocolos_profiler.Lbr.create () in
  Alcotest.(check int) "empty" 0 (Array.length (Ocolos_profiler.Lbr.snapshot l));
  for i = 1 to 5 do
    Ocolos_profiler.Lbr.record l ~from_addr:i ~to_addr:(i * 10)
  done;
  let s = Ocolos_profiler.Lbr.snapshot l in
  Alcotest.(check int) "five entries" 5 (Array.length s);
  Alcotest.(check int) "oldest first" 1 s.(0).Ocolos_profiler.Lbr.from_addr;
  Alcotest.(check int) "newest last" 5 s.(4).Ocolos_profiler.Lbr.from_addr

let test_lbr_wraps_at_capacity () =
  let l = Ocolos_profiler.Lbr.create () in
  let cap = Ocolos_profiler.Lbr.capacity in
  for i = 1 to cap + 10 do
    Ocolos_profiler.Lbr.record l ~from_addr:i ~to_addr:i
  done;
  let s = Ocolos_profiler.Lbr.snapshot l in
  Alcotest.(check int) "capped" cap (Array.length s);
  Alcotest.(check int) "oldest is 11" 11 s.(0).Ocolos_profiler.Lbr.from_addr;
  Ocolos_profiler.Lbr.clear l;
  Alcotest.(check int) "cleared" 0 (Array.length (Ocolos_profiler.Lbr.snapshot l))

let test_perf_session_collects () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let session = Ocolos_profiler.Perf.start proc in
  Ocolos_proc.Proc.run ~cycle_limit:100_000.0 proc;
  let samples = Ocolos_profiler.Perf.stop session in
  Alcotest.(check bool) "samples collected" true (List.length samples > 10);
  Alcotest.(check bool) "records in samples" true
    (Ocolos_profiler.Perf.record_count samples > 100);
  (* After stop, the hook is removed: further running adds nothing. *)
  let n = List.length samples in
  Ocolos_proc.Proc.run ~cycle_limit:150_000.0 proc;
  Alcotest.(check int) "no more samples" n (List.length samples)

let test_perf_sampling_period () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let cfg = { Ocolos_profiler.Perf.sample_period = 1000; pmi_overhead = 0.0 } in
  let session = Ocolos_profiler.Perf.start ~cfg proc in
  Ocolos_proc.Proc.run ~cycle_limit:50_000.0 proc;
  let samples = Ocolos_profiler.Perf.stop session in
  (* 2 threads x 50k cycles / 1000-cycle period = ~100 PMIs. *)
  let n = List.length samples in
  Alcotest.(check bool) (Printf.sprintf "roughly period-spaced (%d)" n) true
    (n > 50 && n < 160)

let test_profile_merge () =
  let p1 = Ocolos_profiler.Profile.create () in
  let p2 = Ocolos_profiler.Profile.create () in
  Ocolos_profiler.Profile.add_branch p1 ~from_addr:1 ~to_addr:2 3;
  Ocolos_profiler.Profile.add_branch p2 ~from_addr:1 ~to_addr:2 4;
  Ocolos_profiler.Profile.add_branch p2 ~from_addr:5 ~to_addr:6 1;
  Ocolos_profiler.Profile.add_call p1 ~caller:0 ~callee:1 2;
  let m = Ocolos_profiler.Profile.merge [ p1; p2 ] in
  Alcotest.(check int) "summed" 7 (Ocolos_profiler.Profile.branch_count m (1, 2));
  Alcotest.(check int) "kept" 1 (Ocolos_profiler.Profile.branch_count m (5, 6));
  Alcotest.(check int) "calls kept" 2 (Ocolos_profiler.Profile.call_count m (0, 1));
  Alcotest.(check int) "records summed" (p1.Ocolos_profiler.Profile.total_records
    + p2.Ocolos_profiler.Profile.total_records) m.Ocolos_profiler.Profile.total_records

let test_perf2bolt_against_ground_truth () =
  (* Profile a run while independently counting every taken branch with a
     second hook-level census; perf2bolt's aggregate must be a subsample
     concentrated on the same edges. *)
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let census : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let session = Ocolos_profiler.Perf.start proc in
  (* Chain a second observer after perf's. *)
  let perf_hook = proc.Ocolos_proc.Proc.hooks.on_taken_branch in
  proc.Ocolos_proc.Proc.hooks.on_taken_branch <-
    Some
      (fun ~tid ~from_addr ~to_addr ~kind ~cycles ->
        (match Hashtbl.find_opt census (from_addr, to_addr) with
        | Some v -> Hashtbl.replace census (from_addr, to_addr) (v + 1)
        | None -> Hashtbl.add census (from_addr, to_addr) 1);
        match perf_hook with Some f -> f ~tid ~from_addr ~to_addr ~kind ~cycles | None -> ());
  Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc;
  proc.Ocolos_proc.Proc.hooks.on_taken_branch <- perf_hook;
  let samples = Ocolos_profiler.Perf.stop session in
  let profile = Ocolos_profiler.Perf2bolt.convert ~binary:w.Workload.binary samples in
  (* Every profiled edge must exist in the census. *)
  Hashtbl.iter
    (fun key count ->
      Alcotest.(check bool) "edge is real" true (Hashtbl.mem census key);
      Alcotest.(check bool) "subsample" true (count <= Hashtbl.find census key))
    profile.Ocolos_profiler.Profile.branches;
  (* Heavily-executed edges should be captured. *)
  let hot_edges =
    Hashtbl.fold (fun k v acc -> if v > 500 then k :: acc else acc) census []
  in
  let captured =
    List.filter (fun k -> Ocolos_profiler.Profile.branch_count profile k > 0) hot_edges
  in
  Alcotest.(check bool) "most hot edges captured" true
    (List.length captured * 10 >= List.length hot_edges * 8)

let test_perf2bolt_call_edges () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let session = Ocolos_profiler.Perf.start proc in
  Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc;
  let samples = Ocolos_profiler.Perf.stop session in
  let profile = Ocolos_profiler.Perf2bolt.convert ~binary:w.Workload.binary samples in
  Alcotest.(check bool) "call graph non-empty" true
    (Hashtbl.length profile.Ocolos_profiler.Profile.calls > 0);
  (* main calls the parser on every transaction: that edge must be seen. *)
  (match w.Workload.gen.Gen.parser_fid with
  | Some pf ->
    Alcotest.(check bool) "main->parser edge" true
      (Ocolos_profiler.Profile.call_count profile (w.Workload.gen.Gen.main_fid, pf) > 0)
  | None -> ())

let test_topdown_check () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let before = Ocolos_proc.Proc.total_counters proc in
  Ocolos_proc.Proc.run ~cycle_limit:100_000.0 proc;
  let after = Ocolos_proc.Proc.total_counters proc in
  let v = Ocolos_profiler.Topdown_check.analyze ~before ~after () in
  let fe, ret = Ocolos_profiler.Topdown_check.features v in
  Alcotest.(check bool) "features in range" true
    (fe >= 0.0 && fe <= 1.0 && ret >= 0.0 && ret <= 1.0);
  Alcotest.(check bool) "interval instrs positive" true
    (v.Ocolos_profiler.Topdown_check.interval.Ocolos_uarch.Counters.instructions > 0)

let suite =
  [ Alcotest.test_case "lbr ring" `Quick test_lbr_ring;
    Alcotest.test_case "lbr wraps" `Quick test_lbr_wraps_at_capacity;
    Alcotest.test_case "perf session collects" `Quick test_perf_session_collects;
    Alcotest.test_case "perf sampling period" `Quick test_perf_sampling_period;
    Alcotest.test_case "profile merge" `Quick test_profile_merge;
    Alcotest.test_case "perf2bolt vs ground truth" `Quick test_perf2bolt_against_ground_truth;
    Alcotest.test_case "perf2bolt call edges" `Quick test_perf2bolt_call_edges;
    Alcotest.test_case "topdown check" `Quick test_topdown_check ]
