test/test_isa.ml: Alcotest Array Instr Ir List Ocolos_isa
