test/test_proc.ml: Addr_space Alcotest Array Instr Ir List Ocolos_binary Ocolos_isa Ocolos_proc Proc Thread
