test/main.mli:
