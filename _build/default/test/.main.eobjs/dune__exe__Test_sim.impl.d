test/test_sim.ml: Alcotest Apps List Ocolos_core Ocolos_sim Ocolos_uarch Ocolos_workloads Printf Workload
