test/test_profiler.ml: Alcotest Apps Array Gen Hashtbl List Ocolos_proc Ocolos_profiler Ocolos_uarch Ocolos_workloads Printf Workload
