test/test_util.ml: Alcotest Array List Ocolos_util Rng Stats String Table
