test/test_binary.ml: Alcotest Array Binary Emit Instr Ir Layout List Ocolos_binary Ocolos_isa Ocolos_util Option
