test/main.ml: Alcotest Test_bam Test_binary Test_bolt Test_core Test_daemon Test_disasm Test_encode Test_isa Test_pgo Test_proc Test_profiler Test_props Test_sim Test_uarch Test_util Test_workloads
