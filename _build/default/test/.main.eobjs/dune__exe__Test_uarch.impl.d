test/test_uarch.ml: Alcotest Btb Cache Config Core Counters Ocolos_uarch Predictor Printf
