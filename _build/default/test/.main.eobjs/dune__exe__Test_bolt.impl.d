test/test_bolt.ml: Alcotest Apps Array Binary Emit Fmt Gen Hashtbl Instr Ir List Ocolos_binary Ocolos_bolt Ocolos_isa Ocolos_proc Ocolos_profiler Ocolos_workloads Printf Workload
