test/test_pgo.ml: Alcotest Apps Array Ocolos_binary Ocolos_pgo Ocolos_proc Ocolos_profiler Ocolos_workloads Workload
