test/test_bam.ml: Alcotest Ocolos_core Printf
