test/test_disasm.ml: Alcotest Apps Array Fmt Gen List Ocolos_binary Ocolos_bolt Ocolos_proc Ocolos_profiler Ocolos_workloads String Workload
