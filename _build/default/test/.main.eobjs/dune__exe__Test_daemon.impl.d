test/test_daemon.ml: Alcotest Apps Gen List Ocolos_core Ocolos_proc Ocolos_profiler Ocolos_sim Ocolos_util Ocolos_workloads Workload
