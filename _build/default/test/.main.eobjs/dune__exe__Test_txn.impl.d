test/test_txn.ml: Alcotest Apps Array Hashtbl List Ocolos_bolt Ocolos_core Ocolos_isa Ocolos_proc Ocolos_util Ocolos_workloads Printf Sys Workload
