test/test_core.ml: Alcotest Apps Array Hashtbl List Ocolos_binary Ocolos_bolt Ocolos_core Ocolos_isa Ocolos_proc Ocolos_workloads Printf Workload
