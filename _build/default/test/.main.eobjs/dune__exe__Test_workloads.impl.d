test/test_workloads.ml: Alcotest Apps Array Gen Ir List Ocolos_binary Ocolos_isa Ocolos_proc Ocolos_uarch Ocolos_util Ocolos_workloads Printf Workload
