(* Unit tests for the BOLT substrate: CFG reconstruction, profile
   attachment, block reordering, function reordering, peephole, and the
   full pipeline's structural invariants. *)

open Ocolos_isa
open Ocolos_binary
open Ocolos_workloads

let tiny_binary () =
  let w = Apps.tiny ~tx_limit:None () in
  (w, w.Workload.binary)

(* Reconstruction must partition each function's instructions exactly as the
   emitter's debug info says. *)
let test_reconstruction_matches_debug_info () =
  let _, b = tiny_binary () in
  Array.iter
    (fun (s : Binary.func_sym) ->
      let fid = s.Binary.fs_fid in
      let rc = Ocolos_bolt.Cfg.of_binary b fid in
      (* Every original instruction address of the function is covered by
         exactly one reconstructed block, and the debug fid matches. *)
      let n = Array.length rc.Ocolos_bolt.Cfg.rc_block_addr in
      Alcotest.(check bool) "has blocks" true (n > 0);
      List.iter
        (fun (addr, _) ->
          let covered = ref 0 in
          for bid = 0 to n - 1 do
            if
              addr >= rc.Ocolos_bolt.Cfg.rc_block_addr.(bid)
              && addr < rc.Ocolos_bolt.Cfg.rc_block_end.(bid)
            then incr covered
          done;
          Alcotest.(check int) (Printf.sprintf "addr 0x%x covered once" addr) 1 !covered;
          match Hashtbl.find_opt b.Binary.debug addr with
          | Some (dfid, _) -> Alcotest.(check int) "debug fid" fid dfid
          | None -> Alcotest.fail "missing debug info")
        (Binary.func_instrs b fid))
    b.Binary.symbols

(* Entry block is always bid 0 at the function entry address. *)
let test_reconstruction_entry_block () =
  let _, b = tiny_binary () in
  Array.iter
    (fun (s : Binary.func_sym) ->
      let rc = Ocolos_bolt.Cfg.of_binary b s.Binary.fs_fid in
      Alcotest.(check int) "entry addr" s.Binary.fs_entry rc.Ocolos_bolt.Cfg.rc_block_addr.(0))
    b.Binary.symbols

(* Re-emitting a reconstructed function under its reconstruction order must
   produce semantically equivalent code; checked by whole-program runs in
   the property tests, structurally here: block count and instruction
   count are preserved up to terminator re-encoding. *)
let test_reconstruction_roundtrip_counts () =
  let _, b = tiny_binary () in
  Array.iter
    (fun (s : Binary.func_sym) ->
      let rc = Ocolos_bolt.Cfg.of_binary b s.Binary.fs_fid in
      let ir_blocks = Array.length rc.Ocolos_bolt.Cfg.rc_func.Ir.blocks in
      Alcotest.(check int) "block arrays consistent" ir_blocks
        (Array.length rc.Ocolos_bolt.Cfg.rc_block_addr);
      Alcotest.(check bool) "instr count sane" true (rc.Ocolos_bolt.Cfg.rc_instr_count > 0))
    b.Binary.symbols

let test_jump_table_recovery () =
  (* Build a program with a real jump table (not lowered) and reconstruct. *)
  let f =
    { Ir.fid = 0;
      fname = "switchy";
      blocks =
        [| { Ir.bid = 0;
             body = [ Ir.Plain (Instr.Rand (2, 3)) ];
             term = Ir.Tjump_table (2, [| 1; 2; 3 |]) };
           { Ir.bid = 1; body = [ Ir.Plain (Instr.Movi (0, 1)) ]; term = Ir.Thalt };
           { Ir.bid = 2; body = [ Ir.Plain (Instr.Movi (0, 2)) ]; term = Ir.Thalt };
           { Ir.bid = 3; body = [ Ir.Plain (Instr.Movi (0, 3)) ]; term = Ir.Thalt } |] }
  in
  let p =
    { Ir.funcs = [| f |]; vtables = [||]; entry_fid = 0; globals_words = 2; global_init = [] }
  in
  let e = Emit.emit_default ~name:"jt" p in
  let rc = Ocolos_bolt.Cfg.of_binary e.Emit.binary 0 in
  let has_table =
    Array.exists
      (fun (blk : Ir.block) ->
        match blk.Ir.term with Ir.Tjump_table (_, ts) -> Array.length ts = 3 | _ -> false)
      rc.Ocolos_bolt.Cfg.rc_func.Ir.blocks
  in
  Alcotest.(check bool) "table recovered with 3 targets" true has_table

(* Reconstruction refuses code it cannot prove safe to rewrite. *)
let test_reconstruction_refuses_unknown_indirect_jump () =
  (* Hand-build an image with a bare JumpInd that doesn't match the
     jump-table idiom. *)
  let code = Hashtbl.create 4 in
  Hashtbl.replace code 0x100 (Instr.JumpInd 3);
  Alcotest.(check bool) "unsupported raised" true
    (match
       Ocolos_bolt.Cfg.reconstruct ~fid:0 ~entry:0x100
         ~read_code:(Hashtbl.find_opt code)
         ~read_data:(fun _ -> None)
         ~in_function:(fun a -> a >= 0x100 && a < 0x200)
         ~fid_of_entry:(fun _ -> None)
         ~fname:"weird"
     with
    | exception Ocolos_bolt.Cfg.Unsupported _ -> true
    | _ -> false)

let test_reconstruction_refuses_escaping_branch () =
  let code = Hashtbl.create 4 in
  Hashtbl.replace code 0x100 (Instr.Branch (Instr.Eq, 0, 0x900));
  Hashtbl.replace code 0x104 Instr.Ret;
  Alcotest.(check bool) "unsupported raised" true
    (match
       Ocolos_bolt.Cfg.reconstruct ~fid:0 ~entry:0x100
         ~read_code:(Hashtbl.find_opt code)
         ~read_data:(fun _ -> None)
         ~in_function:(fun a -> a >= 0x100 && a < 0x200)
         ~fid_of_entry:(fun _ -> None)
         ~fname:"escaper"
     with
    | exception Ocolos_bolt.Cfg.Unsupported _ -> true
    | _ -> false)

let test_reconstruction_block_splitting () =
  (* A backward branch into the middle of an already-decoded run forces a
     block split: body [A; B; branch->B]. *)
  let instrs =
    [ (0x100, Instr.Movi (0, 1)); (* A, 5 bytes *)
      (0x105, Instr.Movi (1, 2)); (* B, 5 bytes *)
      (0x10A, Instr.Branch (Instr.Eq, 0, 0x105));
      (0x10E, Instr.Ret) ]
  in
  let code = Hashtbl.create 8 in
  List.iter (fun (a, i) -> Hashtbl.replace code a i) instrs;
  let rc =
    Ocolos_bolt.Cfg.reconstruct ~fid:0 ~entry:0x100 ~read_code:(Hashtbl.find_opt code)
      ~read_data:(fun _ -> None)
      ~in_function:(fun a -> a >= 0x100 && a < 0x200)
      ~fid_of_entry:(fun _ -> None)
      ~fname:"split"
  in
  (* Blocks: [0x100..0x105) falls into [0x105..0x10E) which branches to
     itself or falls into [0x10E..0x10F). *)
  Alcotest.(check int) "three blocks" 3 (Array.length rc.Ocolos_bolt.Cfg.rc_block_addr);
  Alcotest.(check bool) "0x105 is a leader" true
    (Array.exists (fun a -> a = 0x105) rc.Ocolos_bolt.Cfg.rc_block_addr)

let test_attach_profile_counts () =
  let w, b = tiny_binary () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~binary:b ~input in
  let session = Ocolos_profiler.Perf.start proc in
  Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc;
  let samples = Ocolos_profiler.Perf.stop session in
  let profile = Ocolos_profiler.Perf2bolt.convert ~binary:b samples in
  (* The parser is hot: attaching its records must produce nonzero counts
     with flow structure (entry block covered). *)
  let pf = match w.Workload.gen.Gen.parser_fid with Some f -> f | None -> assert false in
  let rc = Ocolos_bolt.Cfg.of_binary b pf in
  let branches =
    Hashtbl.fold
      (fun (f, t) c acc ->
        match Binary.func_of_addr b f with
        | Some s when s.Binary.fs_fid = pf -> (f, t, c) :: acc
        | _ -> acc)
      profile.Ocolos_profiler.Profile.branches []
  in
  let ranges =
    Hashtbl.fold
      (fun (a, e) c acc ->
        match Binary.func_of_addr b a with
        | Some s when s.Binary.fs_fid = pf -> (a, e, c) :: acc
        | _ -> acc)
      profile.Ocolos_profiler.Profile.ranges []
  in
  Ocolos_bolt.Cfg.attach_profile rc ~branches ~ranges;
  Alcotest.(check bool) "entry covered" true (rc.Ocolos_bolt.Cfg.rc_counts.(0) > 0);
  Alcotest.(check bool) "edges attached" true
    (Hashtbl.length rc.Ocolos_bolt.Cfg.rc_edges > 0);
  Alcotest.(check bool) "total positive" true (Ocolos_bolt.Cfg.total_count rc > 0)

(* ExtTSP: making the heavy edge a fallthrough scores higher. *)
let test_ext_tsp_prefers_fallthrough () =
  let rc =
    { Ocolos_bolt.Cfg.rc_fid = 0;
      rc_func = { Ir.fid = 0; fname = "t"; blocks = [||] };
      rc_block_addr = [| 0; 30; 60 |];
      rc_block_end = [| 30; 60; 90 |];
      rc_counts = [| 100; 100; 5 |];
      rc_edges = Hashtbl.create 4;
      rc_instr_count = 10 }
  in
  Hashtbl.replace rc.Ocolos_bolt.Cfg.rc_edges (0, 2) 5;
  Hashtbl.replace rc.Ocolos_bolt.Cfg.rc_edges (0, 1) 100;
  let good = Ocolos_bolt.Bb_reorder.ext_tsp_score rc [ 0; 1; 2 ] in
  let bad = Ocolos_bolt.Bb_reorder.ext_tsp_score rc [ 0; 2; 1 ] in
  Alcotest.(check bool) "hot fallthrough wins" true (good > bad)

let test_layout_func_chains_hot_edge () =
  (* Diamond where the taken side is hot: reorder places it as the
     fallthrough successor. *)
  let rc =
    { Ocolos_bolt.Cfg.rc_fid = 0;
      rc_func = { Ir.fid = 0; fname = "t"; blocks = [||] };
      rc_block_addr = [| 0; 30; 60; 90 |];
      rc_block_end = [| 30; 60; 90; 120 |];
      rc_counts = [| 100; 3; 97; 100 |];
      rc_edges = Hashtbl.create 8;
      rc_instr_count = 12 }
  in
  List.iter
    (fun (e, c) -> Hashtbl.replace rc.Ocolos_bolt.Cfg.rc_edges e c)
    [ ((0, 2), 97); ((0, 1), 3); ((1, 3), 3); ((2, 3), 97) ];
  let hot, cold = Ocolos_bolt.Bb_reorder.layout_func ~split:false rc in
  Alcotest.(check (list int)) "no cold" [] cold;
  (* The hot chain 0-2-3 must appear contiguously. *)
  let rec contiguous = function
    | 0 :: 2 :: 3 :: _ -> true
    | _ :: tl -> contiguous tl
    | [] -> false
  in
  Alcotest.(check bool) (Fmt.str "chain 0-2-3 in %a" Fmt.(list ~sep:sp int) hot) true
    (contiguous hot);
  let new_score = Ocolos_bolt.Bb_reorder.ext_tsp_score rc hot in
  let old_score = Ocolos_bolt.Bb_reorder.ext_tsp_score rc [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "score improves" true (new_score > old_score)

let test_layout_func_splits_cold () =
  let rc =
    { Ocolos_bolt.Cfg.rc_fid = 0;
      rc_func = { Ir.fid = 0; fname = "t"; blocks = [||] };
      rc_block_addr = [| 0; 30; 60 |];
      rc_block_end = [| 30; 60; 90 |];
      rc_counts = [| 10; 0; 10 |];
      rc_edges = Hashtbl.create 4;
      rc_instr_count = 9 }
  in
  Hashtbl.replace rc.Ocolos_bolt.Cfg.rc_edges (0, 2) 10;
  let hot, cold = Ocolos_bolt.Bb_reorder.layout_func ~split:true rc in
  Alcotest.(check (list int)) "block 1 split out" [ 1 ] cold;
  Alcotest.(check bool) "entry first" true (List.hd hot = 0)

let test_layout_func_no_profile_identity () =
  let rc =
    { Ocolos_bolt.Cfg.rc_fid = 0;
      rc_func = { Ir.fid = 0; fname = "t"; blocks = [||] };
      rc_block_addr = [| 0; 30 |];
      rc_block_end = [| 30; 60 |];
      rc_counts = [| 0; 0 |];
      rc_edges = Hashtbl.create 1;
      rc_instr_count = 4 }
  in
  let hot, cold = Ocolos_bolt.Bb_reorder.layout_func rc in
  Alcotest.(check (list int)) "identity" [ 0; 1 ] hot;
  Alcotest.(check (list int)) "no cold" [] cold

let callgraph nodes edges sizes heats =
  let edge_weight = Hashtbl.create 8 in
  List.iter (fun (a, b, w) -> Hashtbl.replace edge_weight (a, b) w) edges;
  { Ocolos_bolt.Func_reorder.nodes;
    edge_weight;
    node_size = (fun f -> List.assoc f sizes);
    node_heat = (fun f -> List.assoc f heats) }

let index_of x l =
  let rec go i = function
    | [] -> -1
    | y :: tl -> if x = y then i else go (i + 1) tl
  in
  go 0 l

let test_c3_places_caller_before_callee () =
  (* A calls B heavily; B never calls A: C3 puts A before B. *)
  let g =
    callgraph [ 0; 1; 2 ]
      [ (0, 1, 100); (2, 0, 1) ]
      [ (0, 100); (1, 100); (2, 100) ]
      [ (0, 50); (1, 100); (2, 5) ]
  in
  let order = Ocolos_bolt.Func_reorder.c3 g in
  Alcotest.(check int) "all nodes" 3 (List.length order);
  Alcotest.(check bool) "caller before callee" true (index_of 0 order < index_of 1 order)

let test_c3_respects_size_cap () =
  let g =
    callgraph [ 0; 1 ] [ (0, 1, 100) ] [ (0, 10); (1, 10) ] [ (0, 5); (1, 10) ]
  in
  let order = Ocolos_bolt.Func_reorder.c3 ~max_cluster_bytes:15 g in
  (* Merge refused: both still present, in some order. *)
  Alcotest.(check int) "both present" 2 (List.length order)

let test_pettis_hansen_adjacency () =
  let g =
    callgraph [ 0; 1; 2; 3 ]
      [ (0, 1, 100); (2, 3, 90); (1, 2, 1) ]
      [ (0, 10); (1, 10); (2, 10); (3, 10) ]
      [ (0, 10); (1, 10); (2, 10); (3, 10) ]
  in
  let order = Ocolos_bolt.Func_reorder.pettis_hansen g in
  Alcotest.(check int) "all nodes" 4 (List.length order);
  Alcotest.(check int) "0 and 1 adjacent" 1 (abs (index_of 0 order - index_of 1 order));
  Alcotest.(check int) "2 and 3 adjacent" 1 (abs (index_of 2 order - index_of 3 order))

let test_func_reorder_permutations () =
  (* All three algorithms return permutations of the node set. *)
  let g =
    callgraph [ 3; 1; 4; 1 + 1; 0 ]
      [ (3, 1, 5); (4, 2, 2); (0, 3, 9) ]
      [ (0, 8); (1, 8); (2, 8); (3, 8); (4, 8) ]
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5) ]
  in
  List.iter
    (fun order ->
      Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3; 4 ] (List.sort compare order))
    [ Ocolos_bolt.Func_reorder.c3 g;
      Ocolos_bolt.Func_reorder.pettis_hansen g;
      Ocolos_bolt.Func_reorder.original g ]

let test_peephole () =
  let f =
    { Ir.fid = 0;
      fname = "noppy";
      blocks =
        [| { Ir.bid = 0;
             body =
               [ Ir.Plain Instr.Nop;
                 Ir.Plain (Instr.Alui (Instr.Add, 3, 3, 0));
                 Ir.Plain (Instr.Alui (Instr.Mul, 4, 4, 1));
                 Ir.Plain (Instr.Movi (1, 5));
                 Ir.Plain (Instr.Alui (Instr.Add, 3, 4, 0)) ];
             term = Ir.Tret } |] }
  in
  let cleaned, removed = Ocolos_bolt.Peephole.run_func f in
  Alcotest.(check int) "three no-ops removed" 3 removed;
  Alcotest.(check int) "two instrs left" 2 (List.length cleaned.Ir.blocks.(0).Ir.body)

let test_full_pipeline_invariants () =
  let w, b = tiny_binary () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~binary:b ~input in
  let session = Ocolos_profiler.Perf.start proc in
  Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc;
  let samples = Ocolos_profiler.Perf.stop session in
  let profile = Ocolos_profiler.Perf2bolt.convert ~binary:b samples in
  let r = Ocolos_bolt.Bolt.run ~binary:b ~profile () in
  let m = r.Ocolos_bolt.Bolt.merged in
  (* Original code preserved at original addresses (design principle #1). *)
  Array.iter
    (fun addr ->
      Alcotest.(check bool) "original instr intact" true
        (Binary.find_instr m addr = Binary.find_instr b addr))
    b.Binary.code_order;
  (* Section renaming: bolt.org.text + new .text at a higher base. *)
  Alcotest.(check bool) "bolt.org.text" true (Binary.section_named m "bolt.org.text" <> None);
  (match Binary.section_named m ".text" with
  | Some s -> Alcotest.(check bool) "new text above" true (s.Binary.sec_base >= r.Ocolos_bolt.Bolt.bolt_base)
  | None -> Alcotest.fail "missing new .text");
  (* Translation maps old entries to addresses inside the new section. *)
  List.iter
    (fun (old_e, new_e) ->
      Alcotest.(check bool) "old entry was an entry" true
        (Array.exists (fun s -> s.Binary.fs_entry = new_e) m.Binary.symbols);
      Alcotest.(check bool) "new addr in new text" true (new_e >= r.Ocolos_bolt.Bolt.bolt_base);
      Alcotest.(check bool) "old below" true (old_e < r.Ocolos_bolt.Bolt.bolt_base))
    r.Ocolos_bolt.Bolt.translation;
  (* V-tables rewritten to optimized entries where applicable. *)
  let tr = Hashtbl.create 16 in
  List.iter (fun (o, n) -> Hashtbl.replace tr o n) r.Ocolos_bolt.Bolt.translation;
  Array.iteri
    (fun vid vt ->
      Array.iteri
        (fun slot entry ->
          let old_entry = b.Binary.vtables.(vid).Binary.vt_entries.(slot) in
          let expected = match Hashtbl.find_opt tr old_entry with Some n -> n | None -> old_entry in
          Alcotest.(check int) "vt entry translated" expected entry)
        vt.Binary.vt_entries)
    m.Binary.vtables;
  Alcotest.(check bool) "hot funcs found" true (r.Ocolos_bolt.Bolt.funcs_reordered > 0);
  Alcotest.(check bool) "work accounted" true (r.Ocolos_bolt.Bolt.work_instrs > 0)

let test_bolt_handles_bolted_binary () =
  (* Our BOLT accepts BOLTed binaries (the LLVM-BOLT limitation the paper
     works around is absent): run the pipeline twice. *)
  let w, b = tiny_binary () in
  let input = Workload.find_input w "a" in
  let run_profile binary =
    let proc = Workload.launch w ~binary ~input in
    let session = Ocolos_profiler.Perf.start proc in
    Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc;
    Ocolos_profiler.Perf2bolt.convert ~binary (Ocolos_profiler.Perf.stop session)
  in
  let r1 = Ocolos_bolt.Bolt.run ~binary:b ~profile:(run_profile b) () in
  let b1 = r1.Ocolos_bolt.Bolt.merged in
  let r2 = Ocolos_bolt.Bolt.run ~binary:b1 ~profile:(run_profile b1) () in
  Alcotest.(check bool) "second round optimizes" true (r2.Ocolos_bolt.Bolt.funcs_reordered > 0);
  Alcotest.(check bool) "second base higher" true
    (r2.Ocolos_bolt.Bolt.bolt_base > r1.Ocolos_bolt.Bolt.bolt_base)

let suite =
  [ Alcotest.test_case "reconstruction matches debug info" `Quick
      test_reconstruction_matches_debug_info;
    Alcotest.test_case "reconstruction refuses unknown indirect jump" `Quick
      test_reconstruction_refuses_unknown_indirect_jump;
    Alcotest.test_case "reconstruction refuses escaping branch" `Quick
      test_reconstruction_refuses_escaping_branch;
    Alcotest.test_case "reconstruction splits blocks" `Quick
      test_reconstruction_block_splitting;
    Alcotest.test_case "reconstruction entry block" `Quick test_reconstruction_entry_block;
    Alcotest.test_case "reconstruction roundtrip counts" `Quick
      test_reconstruction_roundtrip_counts;
    Alcotest.test_case "jump table recovery" `Quick test_jump_table_recovery;
    Alcotest.test_case "attach profile counts" `Quick test_attach_profile_counts;
    Alcotest.test_case "ext-tsp prefers fallthrough" `Quick test_ext_tsp_prefers_fallthrough;
    Alcotest.test_case "layout chains hot edge" `Quick test_layout_func_chains_hot_edge;
    Alcotest.test_case "layout splits cold" `Quick test_layout_func_splits_cold;
    Alcotest.test_case "layout identity without profile" `Quick
      test_layout_func_no_profile_identity;
    Alcotest.test_case "c3 caller before callee" `Quick test_c3_places_caller_before_callee;
    Alcotest.test_case "c3 size cap" `Quick test_c3_respects_size_cap;
    Alcotest.test_case "pettis-hansen adjacency" `Quick test_pettis_hansen_adjacency;
    Alcotest.test_case "reorders are permutations" `Quick test_func_reorder_permutations;
    Alcotest.test_case "peephole" `Quick test_peephole;
    Alcotest.test_case "full pipeline invariants" `Quick test_full_pipeline_invariants;
    Alcotest.test_case "bolt on bolted binary" `Quick test_bolt_handles_bolted_binary ]
