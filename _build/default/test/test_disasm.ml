(* Tests for the disassembler and a few remaining edge cases across the
   toolkit. *)

open Ocolos_workloads

(* Substring search (no external string library needed). *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_disasm_function () =
  let w = Apps.tiny () in
  let b = w.Workload.binary in
  let out = Ocolos_binary.Disasm.function_to_string b w.Workload.gen.Gen.main_fid in
  Alcotest.(check bool) "names function" true
    (contains out "<main_loop>");
  Alcotest.(check bool) "shows blocks" true (contains out ".bb");
  Alcotest.(check bool) "symbolizes parser call" true
    (contains out "<parse_query>")


let test_disasm_whole_binary () =
  let w = Apps.tiny () in
  let out = Fmt.str "%a" Ocolos_binary.Disasm.pp w.Workload.binary in
  (* Every function appears. *)
  Array.iter
    (fun (s : Ocolos_binary.Binary.func_sym) ->
      Alcotest.(check bool) s.Ocolos_binary.Binary.fs_name true
        (contains out ("<" ^ s.Ocolos_binary.Binary.fs_name ^ ">")))
    w.Workload.binary.Ocolos_binary.Binary.symbols


let test_disasm_split_function_marked () =
  (* BOLT a binary and disassemble an optimized, split function. *)
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let session = Ocolos_profiler.Perf.start proc in
  Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc;
  let profile =
    Ocolos_profiler.Perf2bolt.convert ~binary:w.Workload.binary
      (Ocolos_profiler.Perf.stop session)
  in
  let r = Ocolos_bolt.Bolt.run ~binary:w.Workload.binary ~profile () in
  let split_fid =
    Array.find_opt
      (fun (s : Ocolos_binary.Binary.func_sym) ->
        List.length s.Ocolos_binary.Binary.fs_ranges >= 3)
      r.Ocolos_bolt.Bolt.merged.Ocolos_binary.Binary.symbols
    (* merged symbols carry new hot+cold ranges plus the old C0 range *)
  in
  match split_fid with
  | Some s ->
    let out =
      Ocolos_binary.Disasm.function_to_string r.Ocolos_bolt.Bolt.merged
        s.Ocolos_binary.Binary.fs_fid
    in
    Alcotest.(check bool) "split marker" true (contains out "split")
  | None -> () (* no function was split in this profile; nothing to check *)

let suite =
  [ Alcotest.test_case "disasm function" `Quick test_disasm_function;
    Alcotest.test_case "disasm whole binary" `Quick test_disasm_whole_binary;
    Alcotest.test_case "disasm split function" `Quick test_disasm_split_function_marked ]
