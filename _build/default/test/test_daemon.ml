(* Tests for the continuous-optimization controller and the perf-report
   analog. *)

open Ocolos_workloads
module Daemon = Ocolos_core.Daemon
module Clock = Ocolos_sim.Clock

let drive proc horizon = Ocolos_proc.Proc.run ~cycle_limit:(Clock.seconds_to_cycles horizon) proc

(* Tick the daemon once per simulated second for [seconds]; collect
   non-idle actions. *)
let run_daemon d proc ~from ~seconds =
  let actions = ref [] in
  for s = from + 1 to from + seconds do
    drive proc (float_of_int s);
    match Daemon.tick d ~now_s:(float_of_int s) with
    | Daemon.Idle -> ()
    | a -> actions := (s, a) :: !actions
  done;
  List.rev !actions

let test_daemon_optimizes_frontend_bound () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let oc = Ocolos_core.Ocolos.attach proc in
  let config = { Daemon.default_config with Daemon.profile_s = 1.0; warmup_s = 0.5 } in
  let d = Daemon.create ~config oc proc in
  let actions = run_daemon d proc ~from:0 ~seconds:6 in
  Alcotest.(check bool) "started profiling" true
    (List.exists (fun (_, a) -> match a with Daemon.Started_profiling _ -> true | _ -> false)
       actions);
  Alcotest.(check int) "replaced once" 1 (Daemon.replacements d);
  Alcotest.(check int) "version 1" 1 (Ocolos_core.Ocolos.version oc)

let test_daemon_steady_state_no_churn () =
  (* After the first optimization, a steady workload must not trigger
     re-optimization. *)
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let oc = Ocolos_core.Ocolos.attach proc in
  let config =
    { Daemon.default_config with Daemon.profile_s = 1.0; warmup_s = 0.5; min_interval_s = 3.0 }
  in
  let d = Daemon.create ~config oc proc in
  ignore (run_daemon d proc ~from:0 ~seconds:20);
  Alcotest.(check int) "exactly one replacement" 1 (Daemon.replacements d)

let test_daemon_reoptimizes_on_input_shift () =
  (* Needs a workload where layout actually matters (tiny fits the L1i, so
     a stale layout costs nothing there). *)
  let w = Apps.mysql_like () in
  let proc = Workload.launch w ~input:(Workload.find_input w "point_select") in
  let oc = Ocolos_core.Ocolos.attach proc in
  let config =
    { Daemon.default_config with
      Daemon.profile_s = 2.0;
      warmup_s = 0.5;
      min_interval_s = 2.0;
      regression_tolerance = 0.08 }
  in
  let d = Daemon.create ~config oc proc in
  ignore (run_daemon d proc ~from:0 ~seconds:8);
  Alcotest.(check int) "optimized for point_select" 1 (Daemon.replacements d);
  (* Shift the input; throughput under the stale C1 layout drops, and the
     daemon must produce C2. *)
  Workload.set_input w proc (Workload.find_input w "write_only");
  ignore (run_daemon d proc ~from:8 ~seconds:12);
  Alcotest.(check bool) "re-optimized after shift" true (Daemon.replacements d >= 2);
  Alcotest.(check bool) "version advanced" true (Ocolos_core.Ocolos.version oc >= 2)

let test_perf_report_finds_hot_function () =
  (* Under the original layout, the parser should rank among the top L1i
     missers (the MYSQLparse effect); under OCOLOS it should fade. *)
  let w = Apps.mysql_like () in
  let input = Workload.find_input w "read_only" in
  let proc = Workload.launch w ~input in
  Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc;
  let session = Ocolos_profiler.Perf_report.start ~period:3 proc in
  Ocolos_proc.Proc.run ~cycle_limit:600_000.0 proc;
  let report = Ocolos_profiler.Perf_report.stop session in
  let rows = Ocolos_profiler.Perf_report.by_function report w.Workload.binary in
  Alcotest.(check bool) "samples collected" true (List.length rows > 5);
  let parser_fid =
    match w.Workload.gen.Gen.parser_fid with Some f -> f | None -> assert false
  in
  let top20 = List.filteri (fun i _ -> i < 20) rows in
  Alcotest.(check bool) "parser in top-20 missers" true
    (List.exists (fun r -> r.Ocolos_profiler.Perf_report.fr_fid = parser_fid) top20);
  (* Annotate: per-address counts of the parser sum to its total. *)
  let annotated = Ocolos_profiler.Perf_report.annotate report w.Workload.binary parser_fid in
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 annotated in
  Alcotest.(check int) "annotate sums"
    (Ocolos_profiler.Perf_report.samples_of_func report w.Workload.binary parser_fid)
    total;
  (* Sampling stops after detach. *)
  let before = List.length rows in
  Ocolos_proc.Proc.run ~cycle_limit:700_000.0 proc;
  Alcotest.(check int) "no more samples" before
    (List.length (Ocolos_profiler.Perf_report.by_function report w.Workload.binary))

let suite =
  [ Alcotest.test_case "daemon optimizes frontend-bound" `Quick
      test_daemon_optimizes_frontend_bound;
    Alcotest.test_case "daemon steady state no churn" `Quick test_daemon_steady_state_no_churn;
    Alcotest.test_case "daemon reoptimizes on input shift" `Slow
      test_daemon_reoptimizes_on_input_shift;
    Alcotest.test_case "perf report finds hot function" `Quick
      test_perf_report_finds_hot_function ]
