(* Unit tests for the instruction set and IR. *)

open Ocolos_isa

let all_instrs =
  [ Instr.Nop;
    Instr.Alu (Instr.Add, 0, 1, 2);
    Instr.Alui (Instr.Xor, 3, 4, 17);
    Instr.Movi (5, 99);
    Instr.Load (1, 2, 8);
    Instr.Store (1, 2, 8);
    Instr.Branch (Instr.Lt, 3, 0x100);
    Instr.Jump 0x200;
    Instr.JumpInd 4;
    Instr.Call 0x300;
    Instr.CallInd 5;
    Instr.Ret;
    Instr.FpCreate (6, 0x400);
    Instr.VtLoad (7, 1, 2);
    Instr.Rand (8, 100);
    Instr.TxMark;
    Instr.Halt ]

let test_sizes_positive () =
  List.iter
    (fun i -> Alcotest.(check bool) (Instr.to_string i) true (Instr.size i > 0))
    all_instrs

let test_control_flow_classification () =
  Alcotest.(check bool) "branch is cf" true (Instr.is_control_flow (Instr.Branch (Instr.Eq, 0, 0)));
  Alcotest.(check bool) "call is cf" true (Instr.is_control_flow (Instr.Call 0));
  Alcotest.(check bool) "alu not cf" false (Instr.is_control_flow (Instr.Alu (Instr.Add, 0, 0, 0)));
  Alcotest.(check bool) "fpcreate not cf" false (Instr.is_control_flow (Instr.FpCreate (0, 0)));
  Alcotest.(check bool) "call not terminator" false (Instr.is_terminator (Instr.Call 0));
  Alcotest.(check bool) "ret terminator" true (Instr.is_terminator Instr.Ret);
  Alcotest.(check bool) "jumpind terminator" true (Instr.is_terminator (Instr.JumpInd 0))

let test_static_target () =
  Alcotest.(check (option int)) "branch" (Some 0x100)
    (Instr.static_target (Instr.Branch (Instr.Lt, 3, 0x100)));
  Alcotest.(check (option int)) "fpcreate" (Some 0x400)
    (Instr.static_target (Instr.FpCreate (6, 0x400)));
  Alcotest.(check (option int)) "callind" None (Instr.static_target (Instr.CallInd 5));
  Alcotest.(check (option int)) "ret" None (Instr.static_target Instr.Ret)

let test_with_target () =
  let i = Instr.with_target (Instr.Call 0x300) 0x999 in
  Alcotest.(check (option int)) "retargeted" (Some 0x999) (Instr.static_target i);
  Alcotest.check_raises "no target"
    (Invalid_argument "Instr.with_target: instruction has no static target") (fun () ->
      ignore (Instr.with_target Instr.Ret 0))

let test_with_target_preserves_size () =
  List.iter
    (fun i ->
      match Instr.static_target i with
      | Some _ ->
        Alcotest.(check int) (Instr.to_string i) (Instr.size i)
          (Instr.size (Instr.with_target i 0x123456))
      | None -> ())
    all_instrs

let test_eval_cond () =
  Alcotest.(check bool) "eq 0" true (Instr.eval_cond Instr.Eq 0);
  Alcotest.(check bool) "ne 0" false (Instr.eval_cond Instr.Ne 0);
  Alcotest.(check bool) "lt -1" true (Instr.eval_cond Instr.Lt (-1));
  Alcotest.(check bool) "ge 0" true (Instr.eval_cond Instr.Ge 0);
  Alcotest.(check bool) "gt 1" true (Instr.eval_cond Instr.Gt 1);
  Alcotest.(check bool) "le 1" false (Instr.eval_cond Instr.Le 1)

let test_eval_alu () =
  Alcotest.(check int) "add" 7 (Instr.eval_alu Instr.Add 3 4);
  Alcotest.(check int) "sub" (-1) (Instr.eval_alu Instr.Sub 3 4);
  Alcotest.(check int) "mul" 12 (Instr.eval_alu Instr.Mul 3 4);
  Alcotest.(check int) "xor" 7 (Instr.eval_alu Instr.Xor 3 4);
  Alcotest.(check int) "shl" 12 (Instr.eval_alu Instr.Shl 3 2);
  Alcotest.(check int) "shr" 1 (Instr.eval_alu Instr.Shr 4 2)

(* A two-function IR program used by several structural tests. *)
let small_program () =
  let callee =
    { Ir.fid = 1;
      fname = "callee";
      blocks = [| { Ir.bid = 0; body = [ Ir.Plain (Instr.Movi (0, 5)) ]; term = Ir.Tret } |] }
  in
  let main =
    { Ir.fid = 0;
      fname = "main";
      blocks =
        [| { Ir.bid = 0;
             body = [ Ir.SCall 1; Ir.Plain Instr.TxMark ];
             term = Ir.Tbranch (Instr.Eq, 0, 1, 1) };
           { Ir.bid = 1; body = []; term = Ir.Thalt } |] }
  in
  { Ir.funcs = [| main; callee |];
    vtables = [| [| 1 |] |];
    entry_fid = 0;
    globals_words = 4;
    global_init = [ (0, 42) ] }

let test_validate_ok () = Ir.validate (small_program ())

let test_validate_rejects_cf_in_body () =
  let p = small_program () in
  let bad =
    { Ir.fid = 1;
      fname = "callee";
      blocks = [| { Ir.bid = 0; body = [ Ir.Plain (Instr.Jump 0) ]; term = Ir.Tret } |] }
  in
  let p = { p with Ir.funcs = [| p.Ir.funcs.(0); bad |] } in
  Alcotest.(check bool) "raises" true
    (match Ir.validate p with exception Ir.Invalid _ -> true | () -> false)

let test_validate_rejects_bad_bid () =
  let p = small_program () in
  let bad =
    { Ir.fid = 1;
      fname = "callee";
      blocks = [| { Ir.bid = 0; body = []; term = Ir.Tjump 7 } |] }
  in
  let p = { p with Ir.funcs = [| p.Ir.funcs.(0); bad |] } in
  Alcotest.(check bool) "raises" true
    (match Ir.validate p with exception Ir.Invalid _ -> true | () -> false)

let test_validate_rejects_bad_callee () =
  let p = small_program () in
  let bad =
    { Ir.fid = 1;
      fname = "callee";
      blocks = [| { Ir.bid = 0; body = [ Ir.SCall 9 ]; term = Ir.Tret } |] }
  in
  let p = { p with Ir.funcs = [| p.Ir.funcs.(0); bad |] } in
  Alcotest.(check bool) "raises" true
    (match Ir.validate p with exception Ir.Invalid _ -> true | () -> false)

let test_lower_jump_tables () =
  let f =
    { Ir.fid = 0;
      fname = "switchy";
      blocks =
        [| { Ir.bid = 0; body = []; term = Ir.Tjump_table (2, [| 1; 2; 3 |]) };
           { Ir.bid = 1; body = []; term = Ir.Tret };
           { Ir.bid = 2; body = []; term = Ir.Tret };
           { Ir.bid = 3; body = []; term = Ir.Tret } |] }
  in
  let p =
    { Ir.funcs = [| f |]; vtables = [||]; entry_fid = 0; globals_words = 0; global_init = [] }
  in
  Alcotest.(check bool) "has tables" true (Ir.has_jump_tables p);
  let lowered = Ir.lower_jump_tables p in
  Alcotest.(check bool) "no tables left" false (Ir.has_jump_tables lowered);
  Ir.validate lowered;
  (* Existing block ids stable; extra compare blocks appended. *)
  Alcotest.(check bool) "blocks appended" true
    (Array.length lowered.Ir.funcs.(0).Ir.blocks > 4)

let test_block_successors () =
  let b = { Ir.bid = 0; body = []; term = Ir.Tbranch (Instr.Eq, 0, 3, 4) } in
  Alcotest.(check (list int)) "branch succs" [ 3; 4 ] (Ir.block_successors b);
  let b = { Ir.bid = 0; body = []; term = Ir.Tret } in
  Alcotest.(check (list int)) "ret succs" [] (Ir.block_successors b)

let test_instr_counts () =
  let p = small_program () in
  Alcotest.(check int) "program count" (Ir.program_instr_count p)
    (Array.fold_left (fun a f -> a + Ir.func_instr_count f) 0 p.Ir.funcs);
  Alcotest.(check bool) "positive" true (Ir.program_instr_count p > 0)

let suite =
  [ Alcotest.test_case "sizes positive" `Quick test_sizes_positive;
    Alcotest.test_case "control-flow classification" `Quick test_control_flow_classification;
    Alcotest.test_case "static target" `Quick test_static_target;
    Alcotest.test_case "with_target" `Quick test_with_target;
    Alcotest.test_case "with_target preserves size" `Quick test_with_target_preserves_size;
    Alcotest.test_case "eval cond" `Quick test_eval_cond;
    Alcotest.test_case "eval alu" `Quick test_eval_alu;
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "validate rejects cf in body" `Quick test_validate_rejects_cf_in_body;
    Alcotest.test_case "validate rejects bad bid" `Quick test_validate_rejects_bad_bid;
    Alcotest.test_case "validate rejects bad callee" `Quick test_validate_rejects_bad_callee;
    Alcotest.test_case "lower jump tables" `Quick test_lower_jump_tables;
    Alcotest.test_case "block successors" `Quick test_block_successors;
    Alcotest.test_case "instr counts" `Quick test_instr_counts ]
