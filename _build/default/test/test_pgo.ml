(* Tests for the compiler-PGO analog. *)

open Ocolos_workloads

let profile_of w input_name =
  let input = Workload.find_input w input_name in
  let proc = Workload.launch w ~input in
  let session = Ocolos_profiler.Perf.start proc in
  Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc;
  Ocolos_profiler.Perf2bolt.convert ~binary:w.Workload.binary
    (Ocolos_profiler.Perf.stop session)

let test_pgo_drops_edges () =
  let w = Apps.tiny () in
  let profile = profile_of w "a" in
  let r =
    Ocolos_pgo.Pgo.run ~program:w.Workload.program ~binary:w.Workload.binary ~profile
      ~name:"t.pgo" ()
  in
  Alcotest.(check bool) "some edges mapped" true (r.Ocolos_pgo.Pgo.edges_mapped > 0);
  Alcotest.(check bool) "mapping is lossy" true
    (r.Ocolos_pgo.Pgo.edges_mapped < r.Ocolos_pgo.Pgo.edges_total)

let test_pgo_binary_semantics () =
  let wp = Apps.tiny ~tx_limit:(Some 150) () in
  let profile =
    let input = Workload.find_input wp "a" in
    let proc = Workload.launch wp ~input in
    let session = Ocolos_profiler.Perf.start proc in
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:5_000_000 proc;
    Ocolos_profiler.Perf2bolt.convert ~binary:wp.Workload.binary
      (Ocolos_profiler.Perf.stop session)
  in
  let r =
    Ocolos_pgo.Pgo.run ~program:wp.Workload.program ~binary:wp.Workload.binary ~profile
      ~name:"t.pgo" ()
  in
  let run binary =
    let proc = Workload.launch wp ~binary ~input:(Workload.find_input wp "a") in
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:50_000_000 proc;
    Workload.checksums proc
  in
  Alcotest.(check (list int)) "pgo binary behaves identically"
    (run wp.Workload.binary)
    (run r.Ocolos_pgo.Pgo.binary)

let test_pgo_reorders_hot_functions () =
  let w = Apps.tiny () in
  let profile = profile_of w "a" in
  let r =
    Ocolos_pgo.Pgo.run ~program:w.Workload.program ~binary:w.Workload.binary ~profile
      ~name:"t.pgo" ()
  in
  Alcotest.(check bool) "hot funcs reordered" true (r.Ocolos_pgo.Pgo.funcs_reordered > 0);
  (* Whole-program recompilation: same function count, single text. *)
  Alcotest.(check int) "all symbols"
    (Array.length w.Workload.binary.Ocolos_binary.Binary.symbols)
    (Array.length r.Ocolos_pgo.Pgo.binary.Ocolos_binary.Binary.symbols);
  Alcotest.(check bool) "no bolt.org.text" true
    (Ocolos_binary.Binary.section_named r.Ocolos_pgo.Pgo.binary "bolt.org.text" = None)

let test_pgo_deterministic () =
  let w = Apps.tiny () in
  let profile = profile_of w "a" in
  let run () =
    (Ocolos_pgo.Pgo.run ~program:w.Workload.program ~binary:w.Workload.binary ~profile
       ~name:"t.pgo" ())
      .Ocolos_pgo.Pgo.edges_mapped
  in
  Alcotest.(check int) "same mapping both times" (run ()) (run ())

let suite =
  [ Alcotest.test_case "pgo drops edges" `Quick test_pgo_drops_edges;
    Alcotest.test_case "pgo binary semantics" `Slow test_pgo_binary_semantics;
    Alcotest.test_case "pgo reorders hot functions" `Quick test_pgo_reorders_hot_functions;
    Alcotest.test_case "pgo deterministic" `Quick test_pgo_deterministic ]
