(* Tests for the instruction codec and binary serialization. *)

open Ocolos_isa
open Ocolos_workloads

let roundtrip i =
  let buf = Buffer.create 16 in
  Encode.encode buf i;
  let r = Encode.reader_of_bytes (Buffer.to_bytes buf) in
  let i' = Encode.decode r in
  Alcotest.(check bool) (Instr.to_string i) true (i = i' && Encode.at_end r)

let test_encode_roundtrip_each () =
  List.iter roundtrip
    [ Instr.Nop;
      Instr.Alu (Instr.Shr, 15, 0, 9);
      Instr.Alui (Instr.And, 4, 4, (1 lsl 19) - 1);
      Instr.Alui (Instr.Sub, 1, 2, -12345);
      Instr.Movi (3, 0);
      Instr.Load (1, 10, 0x1000 + 999);
      Instr.Store (9, 11, 4095);
      Instr.Branch (Instr.Le, 7, 0xA00000);
      Instr.Jump 0x7FFFFFFF;
      Instr.JumpInd 15;
      Instr.Call 0x10000;
      Instr.CallInd 14;
      Instr.Ret;
      Instr.FpCreate (14, 0x200010);
      Instr.VtLoad (14, 6, 39);
      Instr.Rand (0, 1000);
      Instr.TxMark;
      Instr.Halt ]

let test_varint_extremes () =
  let check v =
    let buf = Buffer.create 10 in
    Encode.put_varint buf v;
    let r = Encode.reader_of_bytes (Buffer.to_bytes buf) in
    Alcotest.(check int) (string_of_int v) v (Encode.read_varint r)
  in
  List.iter check [ 0; 1; -1; 63; 64; -64; -65; max_int / 2; -(max_int / 2); 0xFFFFFF ]

let test_decode_error_on_garbage () =
  let r = Encode.reader_of_bytes (Bytes.of_string "\xFF\xFF") in
  Alcotest.(check bool) "raises" true
    (match Encode.decode r with exception Encode.Decode_error _ -> true | _ -> false)

let test_decode_error_on_truncation () =
  let buf = Buffer.create 8 in
  Encode.encode buf (Instr.Jump 0x123456);
  let whole = Buffer.to_bytes buf in
  let cut = Bytes.sub whole 0 (Bytes.length whole - 1) in
  let r = Encode.reader_of_bytes cut in
  Alcotest.(check bool) "raises" true
    (match Encode.decode r with exception Encode.Decode_error _ -> true | _ -> false)

(* Serializing a real workload binary round-trips every component. *)
let test_serialize_roundtrip () =
  let w = Apps.tiny () in
  let b = w.Workload.binary in
  let b' = Ocolos_binary.Serialize.of_bytes (Ocolos_binary.Serialize.to_bytes b) in
  Alcotest.(check string) "name" b.Ocolos_binary.Binary.name b'.Ocolos_binary.Binary.name;
  Alcotest.(check int) "entry" b.Ocolos_binary.Binary.entry b'.Ocolos_binary.Binary.entry;
  Alcotest.(check int) "instr count"
    (Ocolos_binary.Binary.instr_count b)
    (Ocolos_binary.Binary.instr_count b');
  Alcotest.(check bool) "code identical" true
    (Array.for_all
       (fun addr ->
         Ocolos_binary.Binary.find_instr b addr = Ocolos_binary.Binary.find_instr b' addr)
       b.Ocolos_binary.Binary.code_order);
  Alcotest.(check bool) "symbols identical" true
    (b.Ocolos_binary.Binary.symbols = b'.Ocolos_binary.Binary.symbols);
  Alcotest.(check bool) "vtables identical" true
    (b.Ocolos_binary.Binary.vtables = b'.Ocolos_binary.Binary.vtables);
  Alcotest.(check bool) "globals identical" true
    (b.Ocolos_binary.Binary.global_init = b'.Ocolos_binary.Binary.global_init);
  Alcotest.(check int) "debug size"
    (Hashtbl.length b.Ocolos_binary.Binary.debug)
    (Hashtbl.length b'.Ocolos_binary.Binary.debug)

(* A reloaded binary is behaviourally identical. *)
let test_serialized_binary_runs () =
  let w = Apps.tiny ~tx_limit:(Some 100) () in
  let input = Workload.find_input w "a" in
  let run binary =
    let proc = Workload.launch w ~binary ~input in
    Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:40_000_000 proc;
    Workload.checksums proc
  in
  let b' =
    Ocolos_binary.Serialize.of_bytes (Ocolos_binary.Serialize.to_bytes w.Workload.binary)
  in
  Alcotest.(check (list int)) "same behaviour" (run w.Workload.binary) (run b')

(* Save/load through an actual file, including a BOLTed (merged) image. *)
let test_save_load_file () =
  let w = Apps.tiny () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  let session = Ocolos_profiler.Perf.start proc in
  Ocolos_proc.Proc.run ~cycle_limit:150_000.0 proc;
  let profile =
    Ocolos_profiler.Perf2bolt.convert ~binary:w.Workload.binary
      (Ocolos_profiler.Perf.stop session)
  in
  let r = Ocolos_bolt.Bolt.run ~binary:w.Workload.binary ~profile () in
  let path = Filename.temp_file "ocolos" ".oclb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ocolos_binary.Serialize.save path r.Ocolos_bolt.Bolt.merged;
      let b' = Ocolos_binary.Serialize.load path in
      Alcotest.(check int) "entry preserved"
        r.Ocolos_bolt.Bolt.merged.Ocolos_binary.Binary.entry
        b'.Ocolos_binary.Binary.entry;
      Alcotest.(check int) "sections preserved"
        (List.length r.Ocolos_bolt.Bolt.merged.Ocolos_binary.Binary.sections)
        (List.length b'.Ocolos_binary.Binary.sections))

let test_corrupt_image_rejected () =
  Alcotest.(check bool) "bad magic" true
    (match Ocolos_binary.Serialize.of_bytes (Bytes.of_string "NOPE") with
    | exception Ocolos_binary.Serialize.Corrupt _ -> true
    | _ -> false)

(* qcheck: codec round-trips arbitrary well-formed instructions. *)
let instr_arbitrary =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let gen =
    oneof
      [ return Instr.Nop;
        map3 (fun d a b -> Instr.Alu (Instr.Add, d, a, b)) reg reg reg;
        map3 (fun d a imm -> Instr.Alui (Instr.Xor, d, a, imm)) reg reg (int_range (-100000) 100000);
        map2 (fun d imm -> Instr.Movi (d, imm)) reg (int_bound 10_000_000);
        map3 (fun d b off -> Instr.Load (d, b, off)) reg reg (int_bound 100_000);
        map3 (fun s b off -> Instr.Store (s, b, off)) reg reg (int_bound 100_000);
        map2 (fun r t -> Instr.Branch (Instr.Lt, r, t)) reg (int_bound 100_000_000);
        map (fun t -> Instr.Jump t) (int_bound 100_000_000);
        map (fun r -> Instr.JumpInd r) reg;
        map (fun t -> Instr.Call t) (int_bound 100_000_000);
        map (fun r -> Instr.CallInd r) reg;
        return Instr.Ret;
        map2 (fun d t -> Instr.FpCreate (d, t)) reg (int_bound 100_000_000);
        map3 (fun d v s -> Instr.VtLoad (d, v, s)) reg (int_bound 1000) (int_bound 1000);
        map2 (fun d b -> Instr.Rand (d, b + 1)) reg (int_bound 10_000);
        return Instr.TxMark;
        return Instr.Halt ]
  in
  QCheck.make ~print:Instr.to_string gen

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip" ~count:500 (QCheck.list_of_size
    (QCheck.Gen.int_range 1 20) instr_arbitrary) (fun instrs ->
      let buf = Buffer.create 64 in
      List.iter (Encode.encode buf) instrs;
      let r = Encode.reader_of_bytes (Buffer.to_bytes buf) in
      let decoded = List.map (fun _ -> Encode.decode r) instrs in
      decoded = instrs && Encode.at_end r)

let suite =
  [ Alcotest.test_case "roundtrip each opcode" `Quick test_encode_roundtrip_each;
    Alcotest.test_case "varint extremes" `Quick test_varint_extremes;
    Alcotest.test_case "decode error on garbage" `Quick test_decode_error_on_garbage;
    Alcotest.test_case "decode error on truncation" `Quick test_decode_error_on_truncation;
    Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
    Alcotest.test_case "serialized binary runs" `Quick test_serialized_binary_runs;
    Alcotest.test_case "save/load file" `Quick test_save_load_file;
    Alcotest.test_case "corrupt image rejected" `Quick test_corrupt_image_rejected;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip ]
