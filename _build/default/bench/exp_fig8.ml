(* Fig. 8: front-end microarchitectural events per kilo-instruction for
   every MySQL input, under the original binary, OCOLOS, and offline BOLT:
   L1i MPKI, iTLB MPKI, taken branches PKI, mispredicted branches PKI.
   Inputs are sorted by OCOLOS speedup (as in the paper). *)

open Ocolos_workloads
open Ocolos_util
open Ocolos_uarch
module Measure = Ocolos_sim.Measure

let run () =
  Table.section "Fig. 8 — front-end events per kilo-instruction (MySQL inputs)";
  let w = Lazy.force Common.mysql in
  let per_input =
    List.map
      (fun input ->
        Common.progress "fig8: %s" input.Input.name;
        let orig = Common.steady_orig w input in
        let oco = Common.ocolos w input in
        let bolt =
          Common.steady w
            ~binary:(Common.bolt_oracle w input).Ocolos_bolt.Bolt.merged ~variant:"bolt" input
        in
        let speedup = oco.Measure.post.Measure.tps /. orig.Measure.tps in
        (input.Input.name, speedup, orig.Measure.counters,
         oco.Measure.post.Measure.counters, bolt.Measure.counters))
      w.Workload.inputs
  in
  let sorted =
    List.sort (fun (_, a, _, _, _) (_, b, _, _, _) -> compare b a) per_input
  in
  let metric name f =
    Table.section (Printf.sprintf "Fig. 8 metric: %s" name);
    Table.print
      ~headers:[| "input (sorted by speedup)"; "original"; "OCOLOS"; "BOLT" |]
      (List.map
         (fun (n, _, o, c, b) ->
           [| n; Table.fmt_f ~digits:2 (f o); Table.fmt_f ~digits:2 (f c);
              Table.fmt_f ~digits:2 (f b) |])
         sorted)
  in
  metric "L1i MPKI" Counters.l1i_mpki;
  metric "iTLB MPKI" Counters.itlb_mpki;
  metric "taken branches / kilo-instruction" Counters.taken_branches_pki;
  metric "branch mispredictions / kilo-instruction" Counters.mispredicts_pki;
  metric "BTB misses / kilo-instruction" Counters.btb_misses_pki
