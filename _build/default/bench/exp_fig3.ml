(* Fig. 3: input sensitivity of offline BOLT.

   MySQL runs the read_only input; BOLT binaries are produced from profiles
   of each training input (plus the merged "all" profile). OCOLOS, which
   always profiles the current input, should match the best offline
   profile. *)

open Ocolos_workloads
open Ocolos_util
module Measure = Ocolos_sim.Measure

let run () =
  Table.section "Fig. 3 — BOLT profile-input sensitivity (MySQL running read_only)";
  let w = Lazy.force Common.mysql in
  let target = Workload.find_input w "read_only" in
  let orig = Common.steady_orig w target in
  let rows = ref [] in
  List.iter
    (fun (train : Input.t) ->
      Common.progress "fig3: training on %s" train.Input.name;
      let bolted = (Common.bolt_oracle w train).Ocolos_bolt.Bolt.merged in
      let s =
        Common.steady w ~binary:bolted ~variant:("fig3-" ^ train.Input.name) target
      in
      rows := (train.Input.name, s.Measure.tps) :: !rows)
    w.Workload.inputs;
  let all = (Common.bolt_avg w).Ocolos_bolt.Bolt.merged in
  let s_all = Common.steady w ~binary:all ~variant:"fig3-all" target in
  rows := ("all (merged)", s_all.Measure.tps) :: !rows;
  let oco = Common.ocolos w target in
  let rows = List.rev !rows in
  let best = List.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 rows in
  Table.print
    ~headers:[| "training input"; "read_only tps"; "vs original"; "vs best profile" |]
    (List.map
       (fun (name, tps) ->
         [| name;
            Table.fmt_f ~digits:0 tps;
            Table.fmt_speedup (tps /. orig.Measure.tps);
            Table.fmt_pct (tps /. best) |])
       rows);
  Printf.printf "\noriginal (no BOLT): %.0f tps [dashed line]\n" orig.Measure.tps;
  Printf.printf "OCOLOS (online, profiles the live input): %.0f tps = %.2fx original [solid line]\n"
    oco.Measure.post.Measure.tps
    (oco.Measure.post.Measure.tps /. orig.Measure.tps);
  let worst = List.fold_left (fun acc (_, t) -> Float.min acc t) infinity rows in
  Printf.printf "worst training input is %.0f%% below the best; OCOLOS reaches %.0f%% of best\n"
    (100.0 *. (1.0 -. (worst /. best)))
    (100.0 *. oco.Measure.post.Measure.tps /. best)
