(* Table II: the fixed costs of code replacement per benchmark — modeled
   perf2bolt time, llvm-bolt time, and the stop-the-world replacement
   pause. *)

open Ocolos_workloads
open Ocolos_util
module Measure = Ocolos_sim.Measure

let run () =
  Table.section "Table II — fixed costs of code replacement";
  let apps = Common.all_apps () in
  let cells =
    List.map
      (fun (w : Workload.t) ->
        let input = List.hd w.Workload.inputs in
        Common.progress "tab2: %s" w.Workload.name;
        let r = Common.ocolos w input in
        (w.Workload.name, r.Measure.perf2bolt_seconds, r.Measure.bolt_seconds,
         r.Measure.stats.Ocolos_core.Ocolos.pause_seconds))
      apps
  in
  let headers = Array.of_list ("" :: List.map (fun (n, _, _, _) -> n) cells) in
  Table.print ~headers
    [ Array.of_list
        ("perf2bolt time (s)" :: List.map (fun (_, p, _, _) -> Table.fmt_f ~digits:3 p) cells);
      Array.of_list
        ("llvm-bolt time (s)" :: List.map (fun (_, _, b, _) -> Table.fmt_f ~digits:3 b) cells);
      Array.of_list
        ("replacement time (s)"
        :: List.map (fun (_, _, _, r) -> Table.fmt_f ~digits:3 r) cells) ];
  print_newline ();
  Printf.printf
    "(times are the calibrated cost model over simulated work volumes; the paper's\n\
     Broadwell numbers for 60 s profiles were 28.2/8.2/0.669 s on MySQL)\n"
