(* Fig. 10: BAM on a from-scratch Clang build.

   A parallel (make -j) build of N source files. BAM profiles the first K
   compiler executions, runs BOLT in the background, and switches later
   execs to the BOLTed compiler. We sweep K and report: the original build
   time, the whole-build-profile BOLT lower bound, the "ideal BAM" (the
   optimized binary available from the start, showing the marginal utility
   of extra profiles), and real BAM (which pays profiling overhead and
   waits for BOLT). *)

open Ocolos_workloads
open Ocolos_util
module Bam = Ocolos_core.Bam
module Clock = Ocolos_sim.Clock

let n_files = 400
let jobs = 8
let ks = [ 1; 2; 3; 5; 8; 12; 20; 32 ]

(* Deterministic per-file duration jitter (+/-8%): source files differ. *)
let jitter i = 1.0 +. (0.08 *. sin (float_of_int ((i * 37) + 11)))

let run_file (w : Workload.t) ~binary ~file =
  let input = List.nth w.Workload.inputs file in
  let proc = Workload.launch ~binary w ~input in
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:200_000_000 proc;
  Clock.cycles_to_seconds (Ocolos_proc.Proc.max_cycles proc)

(* BAM profiles at a lower frequency than the server-mode experiments: the
   compiler runs are short and the build must not drown in perf2bolt work. *)
let bam_perf = { Ocolos_profiler.Perf.sample_period = 6_000; pmi_overhead = 60.0 }

let profile_file (w : Workload.t) ~file =
  let input = List.nth w.Workload.inputs file in
  let proc = Workload.launch w ~input in
  let session = Ocolos_profiler.Perf.start ~cfg:bam_perf proc in
  Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:200_000_000 proc;
  Ocolos_profiler.Perf2bolt.convert ~binary:w.Workload.binary
    (Ocolos_profiler.Perf.stop session)

let run () =
  Table.section "Fig. 10 — BAM: Clang build time vs number of profiled executions";
  let w = Apps.clang_like ~n_files ~tx_per_file:300 () in
  let base_file_s = run_file w ~binary:w.Workload.binary ~file:0 in
  let t_orig file = base_file_s *. jitter file in
  Common.progress "fig10: per-file compile time %.2f s (original)" base_file_s;
  (* Per-prefix profiles (memoized cumulatively). *)
  let profiles = Array.init (List.fold_left max 0 ks) (fun i -> lazy (profile_file w ~file:i)) in
  let cost = Ocolos_core.Cost.default in
  let opt_time_for k =
    let ps = List.init k (fun i -> Lazy.force profiles.(i)) in
    let merged = Ocolos_profiler.Profile.merge ps in
    let r = Ocolos_bolt.Bolt.run ~binary:w.Workload.binary ~profile:merged () in
    (* Held-out file: the same measurement file for every K, so the sweep
       reflects profile quality rather than per-file variance. *)
    let opt_file_s = run_file w ~binary:r.Ocolos_bolt.Bolt.merged ~file:50 in
    let bolt_seconds =
      Ocolos_core.Cost.perf2bolt_seconds cost
        ~records:merged.Ocolos_profiler.Profile.total_records
      +. Ocolos_core.Cost.bolt_seconds cost ~work_instrs:r.Ocolos_bolt.Bolt.work_instrs
    in
    (opt_file_s /. jitter 50, bolt_seconds)
  in
  let schedule ~k ~t_opt_base ~bolt_seconds =
    Bam.simulate_build
      ~config:{ Bam.jobs; profiles_wanted = k; perf_slowdown = 1.06 }
      ~n_files ~t_orig
      ~t_opt:(fun f -> t_opt_base *. jitter f)
      ~bolt_seconds ()
  in
  let original = schedule ~k:0 ~t_opt_base:base_file_s ~bolt_seconds:0.0 in
  Common.progress "fig10: original build %.1f s" original.Bam.total_seconds;
  (* Lower bound: profile aggregated from many executions, binary available
     from the start of a fresh build. *)
  let best_opt, _ = opt_time_for (List.fold_left max 0 ks) in
  let lower_bound =
    let t = schedule ~k:0 ~t_opt_base:best_opt ~bolt_seconds:0.0 in
    (* every run uses the optimized binary *)
    Array.fold_left ( +. ) 0.0
      (Array.init n_files (fun f -> best_opt *. jitter f))
    /. float_of_int jobs
    |> fun ideal -> Float.max ideal (t.Bam.total_seconds *. best_opt /. base_file_s)
  in
  let rows =
    List.map
      (fun k ->
        Common.progress "fig10: K=%d" k;
        let t_opt_base, bolt_seconds = opt_time_for k in
        (* Ideal BAM: no overheads, optimized from the start. *)
        let ideal =
          Array.fold_left ( +. ) 0.0 (Array.init n_files (fun f -> t_opt_base *. jitter f))
          /. float_of_int jobs
        in
        let bam = schedule ~k ~t_opt_base ~bolt_seconds in
        [| string_of_int k;
           Table.fmt_f ~digits:1 ideal;
           Table.fmt_f ~digits:1 bam.Bam.total_seconds;
           Table.fmt_speedup (original.Bam.total_seconds /. bam.Bam.total_seconds);
           string_of_int bam.Bam.optimized_runs |])
      ks
  in
  Table.print
    ~headers:
      [| "profiled execs (K)"; "ideal BAM build (s)"; "BAM build (s)"; "BAM speedup";
         "optimized runs" |]
    rows;
  Printf.printf "\noriginal build: %.1f s [red dashed]; whole-build-profile BOLT bound: %.1f s [orange dashed]\n"
    original.Bam.total_seconds lower_bound;
  Printf.printf
    "(paper: 1.09x at K=1 rising to 1.14x near K=5, then declining as profiling delays the switch)\n"
