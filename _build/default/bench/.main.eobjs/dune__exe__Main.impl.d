bench/main.ml: Array Exp_ablations Exp_fig1 Exp_fig10 Exp_fig3 Exp_fig5 Exp_fig6 Exp_fig7 Exp_fig8 Exp_fig9 Exp_tab1 Exp_tab2 List Micro Printf Sys Unix
