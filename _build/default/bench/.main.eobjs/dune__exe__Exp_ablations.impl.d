bench/exp_ablations.ml: Common Lazy List Ocolos_bolt Ocolos_core Ocolos_proc Ocolos_sim Ocolos_uarch Ocolos_util Ocolos_workloads Printf Table Workload
