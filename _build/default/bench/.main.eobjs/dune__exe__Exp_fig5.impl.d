bench/exp_fig5.ml: Array Common Float Input List Ocolos_util Ocolos_workloads Printf Stats Table Workload
