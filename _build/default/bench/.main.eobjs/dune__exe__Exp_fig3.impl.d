bench/exp_fig3.ml: Common Float Input Lazy List Ocolos_bolt Ocolos_sim Ocolos_util Ocolos_workloads Printf Table Workload
