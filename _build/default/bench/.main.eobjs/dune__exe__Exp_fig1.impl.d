bench/exp_fig1.ml: L1i_history List Ocolos_util Printf String Table
