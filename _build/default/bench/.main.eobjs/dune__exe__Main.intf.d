bench/main.mli:
