bench/exp_fig9.ml: Common Counters Input List Ocolos_sim Ocolos_uarch Ocolos_util Ocolos_workloads Printf Stats Table Workload
