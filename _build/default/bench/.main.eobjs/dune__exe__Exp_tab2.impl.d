bench/exp_tab2.ml: Array Common List Ocolos_core Ocolos_sim Ocolos_util Ocolos_workloads Printf Table Workload
