bench/exp_fig10.ml: Apps Array Common Float Lazy List Ocolos_bolt Ocolos_core Ocolos_proc Ocolos_profiler Ocolos_sim Ocolos_util Ocolos_workloads Printf Table Workload
