bench/common.ml: Apps Fmt Hashtbl Input Lazy List Ocolos_bolt Ocolos_pgo Ocolos_profiler Ocolos_sim Ocolos_workloads Printf Workload
