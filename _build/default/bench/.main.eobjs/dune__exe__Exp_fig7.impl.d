bench/exp_fig7.ml: Common Float Lazy List Ocolos_core Ocolos_sim Ocolos_util Ocolos_workloads Printf Table Workload
