bench/exp_tab1.ml: Array Common Input List Ocolos_binary Ocolos_bolt Ocolos_core Ocolos_profiler Ocolos_sim Ocolos_util Ocolos_workloads Stats Table Workload
