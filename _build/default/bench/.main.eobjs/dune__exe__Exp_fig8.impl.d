bench/exp_fig8.ml: Common Counters Input Lazy List Ocolos_bolt Ocolos_sim Ocolos_uarch Ocolos_util Ocolos_workloads Printf Table Workload
