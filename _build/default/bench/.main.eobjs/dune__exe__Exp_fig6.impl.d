bench/exp_fig6.ml: Common Lazy List Ocolos_bolt Ocolos_profiler Ocolos_sim Ocolos_util Ocolos_workloads Printf Table Workload
