(* Bechamel microbenchmarks of the toolchain's own primitives (wall-clock
   cost of the simulator and optimizer machinery, as opposed to the
   simulated-cycle experiments above): interpreter stepping, profile
   conversion, CFG reconstruction, layout algorithms, emission, and the
   whole BOLT pipeline. *)

open Bechamel
open Toolkit
open Ocolos_workloads

let make_tests () =
  let w = Apps.tiny ~tx_limit:None () in
  let input = Workload.find_input w "a" in
  let proc = Workload.launch w ~input in
  (* Pre-collect a profile for the conversion / optimizer benchmarks. *)
  let proc2 = Workload.launch w ~input in
  let session = Ocolos_profiler.Perf.start proc2 in
  Ocolos_proc.Proc.run ~cycle_limit:200_000.0 proc2;
  let samples = Ocolos_profiler.Perf.stop session in
  let profile = Ocolos_profiler.Perf2bolt.convert ~binary:w.Workload.binary samples in
  let parser_fid =
    match w.Workload.gen.Gen.parser_fid with Some f -> f | None -> 0
  in
  let rc = Ocolos_bolt.Cfg.of_binary w.Workload.binary parser_fid in
  let graph =
    { Ocolos_bolt.Func_reorder.nodes =
        Array.to_list
          (Array.map (fun (s : Ocolos_binary.Binary.func_sym) -> s.Ocolos_binary.Binary.fs_fid)
             w.Workload.binary.Ocolos_binary.Binary.symbols);
      edge_weight = profile.Ocolos_profiler.Profile.calls;
      node_size = (fun _ -> 64);
      node_heat = (fun fid -> Ocolos_profiler.Profile.func_records profile fid) }
  in
  [ Test.make ~name:"interpreter: 1k instructions"
      (Staged.stage (fun () ->
           Ocolos_proc.Proc.run ~cycle_limit:infinity ~max_instrs:1000 proc));
    Test.make ~name:"perf2bolt: convert samples"
      (Staged.stage (fun () ->
           ignore (Ocolos_profiler.Perf2bolt.convert ~binary:w.Workload.binary samples)));
    Test.make ~name:"cfg: reconstruct parser"
      (Staged.stage (fun () -> ignore (Ocolos_bolt.Cfg.of_binary w.Workload.binary parser_fid)));
    Test.make ~name:"bb_reorder: ext-tsp layout"
      (Staged.stage (fun () -> ignore (Ocolos_bolt.Bb_reorder.layout_func rc)));
    Test.make ~name:"func_reorder: C3"
      (Staged.stage (fun () -> ignore (Ocolos_bolt.Func_reorder.c3 graph)));
    Test.make ~name:"func_reorder: Pettis-Hansen"
      (Staged.stage (fun () -> ignore (Ocolos_bolt.Func_reorder.pettis_hansen graph)));
    Test.make ~name:"emit: whole tiny program"
      (Staged.stage (fun () ->
           ignore (Ocolos_binary.Emit.emit_default ~name:"bench" w.Workload.program)));
    Test.make ~name:"bolt: full pipeline"
      (Staged.stage (fun () ->
           ignore (Ocolos_bolt.Bolt.run ~binary:w.Workload.binary ~profile ()))) ]

let run () =
  Ocolos_util.Table.section "Microbenchmarks (wall-clock, Bechamel OLS ns/run)";
  let tests = make_tests () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let grouped = Test.make_grouped ~name:"ocolos" ~fmt:"%s %s" tests in
  let results = Benchmark.all cfg instances grouped in
  let analyzed = Analyze.all ols Instance.monotonic_clock results in
  let rows = ref [] in
  Hashtbl.iter
    (fun name r ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> rows := (name, est) :: !rows
      | Some _ | None -> ())
    analyzed;
  List.iter
    (fun (name, est) -> Printf.printf "%-45s %14.0f ns/run\n" name est)
    (List.sort compare !rows);
  print_newline ()
