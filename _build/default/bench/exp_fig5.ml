(* Fig. 5: throughput of OCOLOS vs. offline comparators across every
   benchmark and input, normalized to the original (non-PGO) binary:
   BOLT with the oracle profile (upper bound), clang-PGO with the same
   oracle profile, and BOLT with the average-case (all-inputs) profile. *)

open Ocolos_workloads
open Ocolos_util

let comparisons () =
  List.concat_map
    (fun (w : Workload.t) ->
      List.map
        (fun input ->
          Common.progress "fig5: %s/%s" w.Workload.name input.Input.name;
          Common.compare_input w input)
        w.Workload.inputs)
    (Common.all_apps ())

let run () =
  Table.section "Fig. 5 — OCOLOS vs BOLT-oracle vs PGO-oracle vs BOLT-average (normalized)";
  let cs = comparisons () in
  Table.print
    ~headers:
      [| "benchmark"; "input"; "orig tps"; "OCOLOS"; "BOLT oracle"; "PGO oracle"; "BOLT avg" |]
    (List.map
       (fun (c : Common.comparison) ->
         [| c.Common.c_app;
            c.Common.c_input;
            Table.fmt_f ~digits:0 c.Common.orig_tps;
            Table.fmt_speedup c.Common.ocolos_x;
            Table.fmt_speedup c.Common.bolt_oracle_x;
            Table.fmt_speedup c.Common.pgo_oracle_x;
            Table.fmt_speedup c.Common.bolt_avg_x |])
       cs);
  (* Paper's headline aggregates. *)
  let arr f = Array.of_list (List.map f cs) in
  let gap_oracle =
    Stats.mean (arr (fun c -> c.Common.bolt_oracle_x -. c.Common.ocolos_x))
  in
  let gain_avg = Stats.mean (arr (fun c -> c.Common.ocolos_x -. c.Common.bolt_avg_x)) in
  let best = List.fold_left (fun a c -> Float.max a c.Common.ocolos_x) 0.0 cs in
  Printf.printf "\nOCOLOS vs BOLT-oracle: mean gap %.1f points (paper: 4.6)\n"
    (100.0 *. gap_oracle);
  Printf.printf "OCOLOS vs BOLT-average-case: mean gain %.1f points (paper: 8.9)\n"
    (100.0 *. gain_avg);
  Printf.printf "max OCOLOS speedup: %.2fx (paper: up to 2.20x on Verilator, 1.41x on MySQL)\n"
    best;
  (match
     List.find_opt
       (fun c -> c.Common.c_app = "mongodb" && c.Common.c_input = "scan95_insert5")
       cs
   with
  | Some c ->
    Printf.printf
      "mongodb scan95_insert5 inversion: OCOLOS %.2fx (paper: 0.86x — layout opt hurts this workload)\n"
      c.Common.ocolos_x
  | None -> ())
