(* Fig. 1: per-core L1i capacity of AMD & Intel server parts over time — the
   motivation data (capacity has been effectively flat for 15 years). *)

open Ocolos_util

let run () =
  Table.section "Fig. 1 — per-core L1i capacity over time";
  let rows =
    List.map
      (fun (p : L1i_history.point) ->
        [| string_of_int p.L1i_history.year;
           p.L1i_history.vendor;
           p.L1i_history.uarch;
           string_of_int p.L1i_history.l1i_kib ^ " KiB" |])
      (List.sort
         (fun (a : L1i_history.point) b -> compare a.L1i_history.year b.L1i_history.year)
         L1i_history.data)
  in
  Table.print ~headers:[| "year"; "vendor"; "uarch"; "L1i" |] rows;
  let intel =
    List.filter (fun (p : L1i_history.point) -> p.L1i_history.vendor = "Intel") L1i_history.data
  in
  let distinct =
    List.sort_uniq compare (List.map (fun p -> p.L1i_history.l1i_kib) intel)
  in
  Printf.printf "\nIntel per-core L1i capacities observed 2006-2021: %s (literally constant)\n"
    (String.concat ", " (List.map (fun k -> string_of_int k ^ " KiB") distinct))
