(* Fig. 7: throughput of MySQL read_only before, during, and after code
   replacement, with the modeled 95th-percentile latency — the five-region
   timeline (warmup / profiling / perf2bolt+BOLT / stop-the-world /
   optimized). Also reports the paper's "recovery time" analysis: how long
   the optimized code must run to win back the throughput lost during
   replacement. *)

open Ocolos_workloads
open Ocolos_util
module Timeline = Ocolos_sim.Timeline

let run () =
  Table.section "Fig. 7 — throughput timeline around code replacement (MySQL read_only)";
  let w = Lazy.force Common.mysql in
  let input = Workload.find_input w "read_only" in
  let t = Timeline.run ~warmup_s:8 ~profile_s:4 ~post_s:14 w ~input in
  Table.print
    ~headers:[| "second"; "region"; "tps"; "p95 latency (ms)" |]
    (List.map
       (fun (p : Timeline.point) ->
         [| string_of_int p.Timeline.second;
            Timeline.region_name p.Timeline.region;
            Table.fmt_f ~digits:0 p.Timeline.tps;
            Table.fmt_f ~digits:2 p.Timeline.p95_ms |])
       t.Timeline.points);
  Printf.printf "\nperf2bolt: %.2f s, llvm-bolt: %.2f s, stop-the-world pause: %.3f s\n"
    t.Timeline.perf2bolt_seconds t.Timeline.bolt_seconds
    t.Timeline.stats.Ocolos_core.Ocolos.pause_seconds;
  (* Recovery analysis (Section VI-C3): transactions lost during regions
     2-4 versus the per-second gain afterwards. *)
  let avg region =
    let xs = List.filter (fun p -> p.Timeline.region = region) t.Timeline.points in
    if xs = [] then 0.0
    else List.fold_left (fun a p -> a +. p.Timeline.tps) 0.0 xs /. float_of_int (List.length xs)
  in
  let base = avg Timeline.Warmup and opt = avg Timeline.Optimized in
  let lost =
    List.fold_left
      (fun acc p ->
        match p.Timeline.region with
        | Timeline.Profiling | Timeline.Background | Timeline.Pause ->
          acc +. Float.max 0.0 (base -. p.Timeline.tps)
        | Timeline.Warmup | Timeline.Optimized -> acc)
      0.0 t.Timeline.points
  in
  let gain = opt -. base in
  Printf.printf "steady state: %.0f -> %.0f tps (%.2fx)\n" base opt (opt /. base);
  if gain > 0.0 then
    Printf.printf
      "transactions lost to replacement: %.0f; recovered after %.1f s of optimized execution (paper: ~30 s)\n"
      lost (lost /. gain)
