(* Fig. 9: TopDown front-end latency and retiring percentages of the
   original binaries, used to classify which workloads OCOLOS will speed up
   (threshold: >= 5% speedup, as a linear separator trained on the data). *)

open Ocolos_workloads
open Ocolos_util
open Ocolos_uarch
module Measure = Ocolos_sim.Measure

let run () =
  Table.section "Fig. 9 — TopDown classification of OCOLOS benefit";
  let points =
    List.concat_map
      (fun (w : Workload.t) ->
        List.map
          (fun input ->
            let orig = Common.steady_orig w input in
            let oco = Common.ocolos w input in
            let speedup = oco.Measure.post.Measure.tps /. orig.Measure.tps in
            let td = Counters.topdown orig.Measure.counters in
            ( Printf.sprintf "%s/%s" w.Workload.name input.Input.name,
              td.Counters.frontend,
              td.Counters.retiring,
              speedup ))
          w.Workload.inputs)
      (Common.all_apps ())
  in
  Table.print
    ~headers:[| "workload"; "FE-latency %"; "retiring %"; "OCOLOS speedup"; "benefits?" |]
    (List.map
       (fun (name, fe, ret, s) ->
         [| name; Table.fmt_pct fe; Table.fmt_pct ret; Table.fmt_speedup s;
            (if s >= 1.05 then "yes" else "no") |])
       points);
  let labeled = List.map (fun (_, fe, ret, s) -> (fe, ret, s >= 1.05)) points in
  let classifier = Stats.train_perceptron labeled in
  Printf.printf
    "\nlinear classifier: benefit iff %.2f*FE%% + %.2f*Ret%% + %.2f > 0 — training accuracy %.0f%%\n"
    classifier.Stats.w1 classifier.Stats.w2 classifier.Stats.bias
    (100.0 *. Stats.accuracy classifier labeled);
  Printf.printf
    "(the paper finds the same two TopDown metrics cleanly separate winners from losers)\n"
