(* Fig. 6: speedup vs. profiling duration (MySQL read_only), for OCOLOS and
   for offline BOLT given the same amount of profiling data. Profiling for
   ~1 second already captures most of the benefit; below ~0.1 s profile
   quality collapses. *)

open Ocolos_workloads
open Ocolos_util
module Measure = Ocolos_sim.Measure

(* The simulated clock is ~1:2000 versus the paper's profiling rates, so the
   quality knee appears at millisecond-scale simulated durations. *)
let durations = [ 0.002; 0.004; 0.008; 0.02; 0.05; 0.1; 0.5; 2.0 ]

let run () =
  Table.section "Fig. 6 — speedup vs profiling duration (MySQL read_only)";
  let w = Lazy.force Common.mysql in
  let input = Workload.find_input w "read_only" in
  let orig = Common.steady_orig w input in
  let rows =
    List.map
      (fun d ->
        Common.progress "fig6: %.2fs profile" d;
        (* Offline BOLT with a profile of duration d. *)
        let profile = Measure.collect_profile ~seconds:d w ~input in
        let bolted = Measure.bolt_binary w profile in
        let bolt_s =
          Measure.steady ~binary:bolted.Ocolos_bolt.Bolt.merged ~warmup:Common.warmup
            ~measure:Common.measure_s w ~input
        in
        (* OCOLOS profiling the live process for d. *)
        let oco = Measure.ocolos_steady ~warmup:Common.warmup ~profile_s:d
            ~measure:Common.measure_s w ~input
        in
        [| Printf.sprintf "%.3f" d;
           Table.fmt_speedup (oco.Measure.post.Measure.tps /. orig.Measure.tps);
           Table.fmt_speedup (bolt_s.Measure.tps /. orig.Measure.tps);
           Table.fmt_int profile.Ocolos_profiler.Profile.total_records |])
      durations
  in
  Table.print
    ~headers:[| "profile duration (s)"; "OCOLOS speedup"; "BOLT speedup"; "LBR records" |]
    rows
