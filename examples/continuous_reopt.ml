(* Continuous optimization (paper Section IV-C, implemented here although
   the paper could not evaluate it): the server's input mix shifts at run
   time; OCOLOS re-profiles the already-optimized process, replaces C1 with
   C2, copies stack-live functions, and garbage-collects the old version so
   code memory does not grow.

     dune exec examples/continuous_reopt.exe *)

open Ocolos_workloads
module Proc = Ocolos_proc.Proc
module Ocolos = Ocolos_core.Ocolos
module Clock = Ocolos_sim.Clock

let () =
  let w = Apps.mysql_like () in
  let proc = Workload.launch w ~input:(Workload.find_input w "point_select") in
  let oc = Ocolos.attach proc in
  let horizon = ref 0.0 in
  let advance s =
    horizon := !horizon +. s;
    Proc.run ~cycle_limit:(Clock.seconds_to_cycles !horizon) proc
  in
  let tps_over s =
    let t0 = Proc.transactions proc in
    advance s;
    float_of_int (Proc.transactions proc - t0) /. s
  in
  let optimize label =
    Ocolos.start_profiling oc;
    advance 2.0;
    let profile, _ = Ocolos.stop_profiling oc in
    let result, _ = Ocolos.run_bolt oc profile in
    let s = Ocolos.replace_code oc result in
    Fmt.pr
      "%s -> C%d: %d funcs optimized, %d sites + %d v-table entries patched, %d frames migrated, GC freed %d bytes@."
      label s.Ocolos.version s.Ocolos.funcs_optimized s.Ocolos.call_sites_patched
      s.Ocolos.vtable_entries_patched s.Ocolos.frames_migrated s.Ocolos.gc_bytes_freed;
    s
  in
  let code_bytes () = proc.Proc.mem.Ocolos_proc.Addr_space.code_bytes in
  advance 0.5;
  Fmt.pr "phase 1  input=point_select  code=C0  tps=%.0f  code bytes=%d@." (tps_over 1.5)
    (code_bytes ());
  ignore (optimize "replace");
  Fmt.pr "phase 2  input=point_select  code=C1  tps=%.0f  code bytes=%d@." (tps_over 1.5)
    (code_bytes ());

  (* The workload shifts: the daily pattern changes from reads to writes
     (the staleness problem offline PGO cannot follow). *)
  Workload.set_input w proc (Workload.find_input w "write_only");
  advance 0.3;
  Fmt.pr "phase 3  input=write_only    code=C1 (stale profile)  tps=%.0f@." (tps_over 1.5);
  ignore (optimize "replace");
  Fmt.pr "phase 4  input=write_only    code=C2  tps=%.0f  code bytes=%d@." (tps_over 1.5)
    (code_bytes ());

  (* One more shift and round, to show code memory stays bounded. *)
  Workload.set_input w proc (Workload.find_input w "read_write");
  advance 0.3;
  ignore (optimize "replace");
  Fmt.pr "phase 5  input=read_write    code=C3  tps=%.0f  code bytes=%d@." (tps_over 1.5)
    (code_bytes ());
  Fmt.pr
    "@.code memory is stable across versions: each round's GC unmaps the previous version@."
